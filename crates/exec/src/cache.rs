//! A versioned on-disk result cache, keyed by 64-bit structural
//! fingerprints.
//!
//! Sweeps already share work *within* one process (duplicate settings are
//! deduplicated, identical compiled images share a profiling run). A
//! [`DiskCache`] extends that sharing **across process invocations and
//! rigs**: each entry is one JSON file named by its fingerprint, so a
//! repeated or re-sharded sweep reuses every profiling run it has already
//! paid for instead of re-simulating it.
//!
//! ## Versioning
//!
//! Cache entries are versioned exactly like `portopt-serve` snapshots: a
//! self-describing `meta` header (magic, cache format version, payload
//! kind + payload version, and the entry's own key) is validated *before*
//! the payload is decoded, and every rejection is a loud, specific
//! [`CacheError`] — a cache written by an older IR encoding is refused,
//! never silently reused. Callers are expected to treat a rejected entry
//! as a miss (recompute and overwrite), so a stale or corrupted cache
//! degrades throughput, not correctness.
//!
//! ## Concurrency
//!
//! A `DiskCache` is `Sync`: sweep workers read and write entries
//! concurrently. Writes go to a uniquely-named temp file in the cache
//! directory and are published with an atomic rename, so a reader never
//! observes a half-written entry and concurrent writers of the same key
//! simply race to publish identical bytes.
//!
//! ## Garbage collection
//!
//! On a shared filesystem entries accumulate without bound, so the cache
//! also does size accounting ([`DiskCache::total_bytes`],
//! [`DiskCache::entries`]) and bounded eviction ([`DiskCache::gc`]):
//! oldest-first by modification time (LRU, with write time as the recency
//! signal) until the directory fits the byte budget. Entries this handle
//! wrote **or served as hits** during the current run are never evicted —
//! a concurrent GC can only reclaim *other* runs' entries, so it can slow
//! a live sweep down but never yank its working set. A pass also sweeps
//! up stale `*.tmp` droppings left behind by killed writers.
//!
//! ```
//! use portopt_exec::cache::DiskCache;
//!
//! let dir = std::env::temp_dir().join(format!("portopt-cache-doc-{}", std::process::id()));
//! let cache = DiskCache::open(&dir, "doc-example", 1).unwrap();
//! assert_eq!(cache.get::<Vec<u64>>(0xfeed).unwrap(), None); // cold
//! cache.put(0xfeed, &vec![1u64, 2, 3]).unwrap();
//! assert_eq!(cache.get::<Vec<u64>>(0xfeed).unwrap(), Some(vec![1, 2, 3]));
//! let stats = cache.stats();
//! assert_eq!((stats.hits, stats.misses, stats.rejected), (1, 1, 0));
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use serde::{Deserialize, Serialize, Value};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, SystemTime};

/// The `magic` field of every cache entry; anything else is not one.
pub const CACHE_MAGIC: &str = "portopt-cache-entry";

/// Current entry-envelope format version. Bump on any change to the
/// envelope layout (the `meta`/`payload` framing itself).
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// Self-describing header written before every payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct EntryMeta {
    /// Always [`CACHE_MAGIC`].
    magic: String,
    /// Envelope version ([`CACHE_FORMAT_VERSION`] at write time).
    format_version: u32,
    /// What the payload is (caller-chosen namespace, e.g. `exec-profile`).
    kind: String,
    /// Caller-chosen payload encoding version; bump when the payload type
    /// (or anything its fingerprint key covers, like the IR encoding)
    /// changes shape.
    payload_version: u32,
    /// The entry's own key, hex-encoded — catches files copied or renamed
    /// to the wrong fingerprint.
    key: String,
}

/// Cumulative outcome counters for one [`DiskCache`] handle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries found, validated and decoded.
    pub hits: u64,
    /// Keys with no entry on disk.
    pub misses: u64,
    /// Entries present but refused (corrupt, stale version, wrong kind…).
    pub rejected: u64,
}

/// Why a cache entry (or the cache directory) was refused.
#[derive(Debug)]
pub enum CacheError {
    /// The entry or directory could not be read or written.
    Io(std::io::Error),
    /// The entry file is not parseable as a cache entry at all.
    Corrupt(String),
    /// The file parses but its `magic` field is wrong — some other JSON
    /// document landed in the cache directory.
    NotACacheEntry {
        /// The magic actually found.
        found: String,
    },
    /// The entry was written by an incompatible envelope format version.
    VersionMismatch {
        /// Version in the file.
        found: u32,
        /// Version this binary supports.
        supported: u32,
    },
    /// The entry holds a different payload kind than this cache serves.
    KindMismatch {
        /// Kind in the file.
        found: String,
        /// Kind this cache was opened with.
        expected: String,
    },
    /// The payload was encoded under a different payload version (for the
    /// profile cache: an older IR/profile encoding).
    PayloadVersionMismatch {
        /// Payload version in the file.
        found: u32,
        /// Payload version this cache was opened with.
        supported: u32,
    },
    /// The entry's recorded key does not match the file it was read from.
    KeyMismatch {
        /// Key recorded inside the entry.
        found: String,
        /// Key derived from the file name.
        expected: String,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Io(e) => write!(f, "cache i/o error: {e}"),
            CacheError::Corrupt(msg) => write!(f, "corrupt cache entry: {msg}"),
            CacheError::NotACacheEntry { found } => {
                write!(f, "not a portopt cache entry (magic `{found}`)")
            }
            CacheError::VersionMismatch { found, supported } => write!(
                f,
                "cache entry format version {found} is not supported \
                 (this binary reads version {supported})"
            ),
            CacheError::KindMismatch { found, expected } => {
                write!(f, "cache entry holds `{found}`, expected `{expected}`")
            }
            CacheError::PayloadVersionMismatch { found, supported } => write!(
                f,
                "cache entry payload version {found} is stale \
                 (this binary writes version {supported})"
            ),
            CacheError::KeyMismatch { found, expected } => write!(
                f,
                "cache entry records key {found} but was read as {expected} \
                 (file renamed or copied?)"
            ),
        }
    }
}

impl std::error::Error for CacheError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacheError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CacheError {
    fn from(e: std::io::Error) -> Self {
        CacheError::Io(e)
    }
}

/// A directory of fingerprint-keyed, version-checked JSON entries.
///
/// See the [module docs](self) for the format and concurrency story.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    kind: String,
    payload_version: u32,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
    tmp_seq: AtomicU64,
    /// Keys this handle wrote or served as hits: the current run's working
    /// set, which [`DiskCache::gc`] must never evict.
    touched: Mutex<HashSet<u64>>,
}

impl DiskCache {
    /// Opens (creating if needed) a cache directory serving payloads of
    /// `kind` at `payload_version`.
    pub fn open(
        dir: impl AsRef<Path>,
        kind: impl Into<String>,
        payload_version: u32,
    ) -> Result<Self, CacheError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskCache {
            dir,
            kind: kind.into(),
            payload_version,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
            touched: Mutex::new(HashSet::new()),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counters accumulated by this handle (not persisted).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Looks up `key`. `Ok(None)` means "no entry" (a plain miss);
    /// `Err(_)` means an entry exists but was refused, with the specific
    /// reason — callers should log it, recompute, and overwrite via
    /// [`put`](DiskCache::put).
    pub fn get<T: Deserialize>(&self, key: u64) -> Result<Option<T>, CacheError> {
        match self.read_entry(key) {
            Ok(Some(v)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.touch(key);
                Ok(Some(v))
            }
            Ok(None) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Ok(None)
            }
            Err(e) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn read_entry<T: Deserialize>(&self, key: u64) -> Result<Option<T>, CacheError> {
        let bytes = match std::fs::read(self.entry_path(key)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CacheError::Io(e)),
        };
        // Header first, payload second — a stale entry is rejected with
        // its precise mismatch before the (much larger) payload is decoded.
        let doc: serde::Value =
            serde_json::from_slice(&bytes).map_err(|e| CacheError::Corrupt(e.to_string()))?;
        let meta = doc
            .field("meta")
            .and_then(EntryMeta::from_value)
            .map_err(|e| CacheError::Corrupt(e.to_string()))?;
        if meta.magic != CACHE_MAGIC {
            return Err(CacheError::NotACacheEntry { found: meta.magic });
        }
        if meta.format_version != CACHE_FORMAT_VERSION {
            return Err(CacheError::VersionMismatch {
                found: meta.format_version,
                supported: CACHE_FORMAT_VERSION,
            });
        }
        if meta.kind != self.kind {
            return Err(CacheError::KindMismatch {
                found: meta.kind,
                expected: self.kind.clone(),
            });
        }
        if meta.payload_version != self.payload_version {
            return Err(CacheError::PayloadVersionMismatch {
                found: meta.payload_version,
                supported: self.payload_version,
            });
        }
        let expected_key = format!("{key:016x}");
        if meta.key != expected_key {
            return Err(CacheError::KeyMismatch {
                found: meta.key,
                expected: expected_key,
            });
        }
        let payload = doc
            .field("payload")
            .and_then(T::from_value)
            .map_err(|e| CacheError::Corrupt(e.to_string()))?;
        Ok(Some(payload))
    }

    /// Writes (or overwrites) the entry for `key`. Publication is atomic:
    /// concurrent readers see either the old entry or the new one, never a
    /// partial file.
    pub fn put<T: Serialize>(&self, key: u64, payload: &T) -> Result<(), CacheError> {
        let meta = EntryMeta {
            magic: CACHE_MAGIC.to_string(),
            format_version: CACHE_FORMAT_VERSION,
            kind: self.kind.clone(),
            payload_version: self.payload_version,
            key: format!("{key:016x}"),
        };
        let doc = Value::Object(vec![
            ("meta".to_string(), meta.to_value()),
            ("payload".to_string(), payload.to_value()),
        ]);
        let bytes = serde_json::to_vec(&doc).map_err(|e| CacheError::Corrupt(e.to_string()))?;
        // Unique temp name per (process, write): renames within a
        // directory are atomic, so the entry appears fully-formed.
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".{key:016x}.{}.{seq}.tmp", std::process::id()));
        std::fs::write(&tmp, &bytes)?;
        match std::fs::rename(&tmp, self.entry_path(key)) {
            Ok(()) => {
                self.touch(key);
                Ok(())
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(CacheError::Io(e))
            }
        }
    }

    fn touch(&self, key: u64) {
        self.touched.lock().expect("touched set").insert(key);
    }

    /// Whether `key` belongs to this handle's current-run working set
    /// (written or served as a hit through this handle), which
    /// [`gc`](DiskCache::gc) will never evict.
    pub fn is_protected(&self, key: u64) -> bool {
        self.touched.lock().expect("touched set").contains(&key)
    }

    /// Scans the cache directory and describes every entry file (name,
    /// size, modification time). Temp droppings and foreign files are not
    /// entries and are skipped; entries that vanish mid-scan (a concurrent
    /// GC) are skipped too.
    pub fn entries(&self) -> Result<Vec<CacheEntryInfo>, CacheError> {
        let mut out = Vec::new();
        for dirent in std::fs::read_dir(&self.dir)? {
            let dirent = dirent?;
            let name = dirent.file_name();
            let Some(key) = entry_key_of(&name.to_string_lossy()) else {
                continue;
            };
            let Ok(meta) = dirent.metadata() else {
                continue; // raced with a concurrent eviction
            };
            out.push(CacheEntryInfo {
                key,
                bytes: meta.len(),
                modified: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            });
        }
        Ok(out)
    }

    /// Total bytes of all entry files currently in the cache directory.
    pub fn total_bytes(&self) -> Result<u64, CacheError> {
        Ok(self.entries()?.iter().map(|e| e.bytes).sum())
    }

    /// One bounded-size eviction pass: deletes entries oldest-first (by
    /// modification time, key as the tie-break, so a pass is deterministic
    /// for a given directory state) until the remaining entries fit in
    /// `max_bytes` — except entries in this handle's current-run working
    /// set, which are *never* evicted even if the budget cannot be met
    /// without them ([`GcReport::met_budget`] reports which case you got).
    /// Stale `*.tmp` files from killed writers (older than
    /// [`TMP_MAX_AGE`]) are removed as a side effect.
    ///
    /// Concurrent-safe: an entry that disappears mid-pass (another rig's
    /// GC) just stops counting, and live writers re-publish atomically, so
    /// the worst outcome of an eviction race is a re-profiled entry.
    pub fn gc(&self, max_bytes: u64) -> Result<GcReport, CacheError> {
        let tmp_removed = self.sweep_stale_tmps();
        let mut entries = self.entries()?;
        entries.sort_by(|a, b| (a.modified, a.key).cmp(&(b.modified, b.key)));
        let before_bytes: u64 = entries.iter().map(|e| e.bytes).sum();
        let mut report = GcReport {
            examined: entries.len(),
            before_bytes,
            evicted: 0,
            evicted_bytes: 0,
            kept: 0,
            kept_bytes: before_bytes,
            protected: 0,
            tmp_removed,
        };
        for entry in &entries {
            if report.kept_bytes <= max_bytes {
                report.kept += 1;
                continue;
            }
            if self.is_protected(entry.key) {
                report.protected += 1;
                report.kept += 1;
                continue;
            }
            match std::fs::remove_file(self.entry_path(entry.key)) {
                // NotFound means another process evicted it first —
                // either way the entry no longer occupies the budget.
                Ok(()) => {
                    report.evicted += 1;
                    report.evicted_bytes += entry.bytes;
                    report.kept_bytes -= entry.bytes;
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    report.evicted += 1;
                    report.evicted_bytes += entry.bytes;
                    report.kept_bytes -= entry.bytes;
                }
                // Undeletable (permissions?): still occupying the budget.
                Err(_) => report.kept += 1,
            }
        }
        Ok(report)
    }

    /// Removes `*.tmp` files older than [`TMP_MAX_AGE`] — droppings of
    /// writers that were killed between write and rename. Fresh temp files
    /// are left alone: they may belong to a live writer about to publish.
    fn sweep_stale_tmps(&self) -> usize {
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut removed = 0;
        for dirent in dir.flatten() {
            let name = dirent.file_name();
            if !name.to_string_lossy().ends_with(".tmp") {
                continue;
            }
            let stale = dirent
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| SystemTime::now().duration_since(t).ok())
                .is_some_and(|age| age > TMP_MAX_AGE);
            if stale && std::fs::remove_file(dirent.path()).is_ok() {
                removed += 1;
            }
        }
        removed
    }
}

/// Age past which a `*.tmp` file is considered a dropping of a killed
/// writer and reclaimed by [`DiskCache::gc`]. Live writers publish within
/// milliseconds of creating their temp file.
pub const TMP_MAX_AGE: Duration = Duration::from_secs(600);

/// Parses an entry file name (`<16 hex digits>.json`) back to its key.
fn entry_key_of(name: &str) -> Option<u64> {
    let hex = name.strip_suffix(".json")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// One on-disk cache entry as seen by the GC scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEntryInfo {
    /// The entry's fingerprint key (from its file name).
    pub key: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// Last-modified time — the LRU recency signal.
    pub modified: SystemTime,
}

/// Outcome of one [`DiskCache::gc`] eviction pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries present when the pass started.
    pub examined: usize,
    /// Their total size when the pass started.
    pub before_bytes: u64,
    /// Entries deleted.
    pub evicted: usize,
    /// Bytes reclaimed.
    pub evicted_bytes: u64,
    /// Entries left in the cache.
    pub kept: usize,
    /// Their total size — the directory's size after the pass.
    pub kept_bytes: u64,
    /// Entries kept *despite* the budget because they belong to the
    /// current run's working set.
    pub protected: usize,
    /// Stale `*.tmp` droppings removed.
    pub tmp_removed: usize,
}

impl GcReport {
    /// Whether the pass got the directory under `max_bytes`. `false` means
    /// the current run's protected working set alone exceeds the budget.
    pub fn met_budget(&self, max_bytes: u64) -> bool {
        self.kept_bytes <= max_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("portopt-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_hit_and_miss_counting() {
        let dir = scratch_dir("roundtrip");
        let cache = DiskCache::open(&dir, "test-payload", 3).unwrap();
        assert_eq!(cache.get::<Vec<u64>>(42).unwrap(), None);
        cache.put(42, &vec![9u64, 8, 7]).unwrap();
        assert_eq!(cache.get::<Vec<u64>>(42).unwrap(), Some(vec![9, 8, 7]));
        cache.put(42, &vec![1u64]).unwrap(); // overwrite
        assert_eq!(cache.get::<Vec<u64>>(42).unwrap(), Some(vec![1]));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.rejected), (2, 1, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entry_is_rejected_with_corrupt_error() {
        let dir = scratch_dir("corrupt");
        let cache = DiskCache::open(&dir, "test-payload", 1).unwrap();
        std::fs::write(cache.entry_path(7), b"{ not json").unwrap();
        match cache.get::<u32>(7) {
            Err(CacheError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert_eq!(cache.stats().rejected, 1);
        // A rejected entry is recoverable: overwrite and read back.
        cache.put(7, &5u32).unwrap();
        assert_eq!(cache.get::<u32>(7).unwrap(), Some(5));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_json_is_not_a_cache_entry() {
        let dir = scratch_dir("foreign");
        let cache = DiskCache::open(&dir, "test-payload", 1).unwrap();
        std::fs::write(
            cache.entry_path(9),
            br#"{"meta": {"magic": "something-else", "format_version": 1, "kind": "test-payload", "payload_version": 1, "key": "0000000000000009"}, "payload": 1}"#,
        )
        .unwrap();
        match cache.get::<u32>(9) {
            Err(CacheError::NotACacheEntry { found }) => assert_eq!(found, "something-else"),
            other => panic!("expected NotACacheEntry, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_versions_and_kinds_are_named() {
        let dir = scratch_dir("stale");
        let writer = DiskCache::open(&dir, "test-payload", 2).unwrap();
        writer.put(1, &11u32).unwrap();

        // Same dir opened expecting a newer payload encoding: stale entry.
        let newer = DiskCache::open(&dir, "test-payload", 3).unwrap();
        match newer.get::<u32>(1) {
            Err(CacheError::PayloadVersionMismatch {
                found: 2,
                supported: 3,
            }) => {}
            other => panic!("expected PayloadVersionMismatch, got {other:?}"),
        }

        // Same dir opened for a different payload kind entirely.
        let other_kind = DiskCache::open(&dir, "other-things", 2).unwrap();
        match other_kind.get::<u32>(1) {
            Err(CacheError::KindMismatch { found, expected }) => {
                assert_eq!(found, "test-payload");
                assert_eq!(expected, "other-things");
            }
            other => panic!("expected KindMismatch, got {other:?}"),
        }

        // An envelope from a future format version.
        std::fs::write(
            writer.entry_path(2),
            br#"{"meta": {"magic": "portopt-cache-entry", "format_version": 99, "kind": "test-payload", "payload_version": 2, "key": "0000000000000002"}, "payload": 1}"#,
        )
        .unwrap();
        match writer.get::<u32>(2) {
            Err(CacheError::VersionMismatch {
                found: 99,
                supported: CACHE_FORMAT_VERSION,
            }) => {}
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn renamed_entry_is_caught_by_key_check() {
        let dir = scratch_dir("renamed");
        let cache = DiskCache::open(&dir, "test-payload", 1).unwrap();
        cache.put(0xAA, &1u32).unwrap();
        std::fs::copy(cache.entry_path(0xAA), cache.entry_path(0xBB)).unwrap();
        match cache.get::<u32>(0xBB) {
            Err(CacheError::KeyMismatch { found, expected }) => {
                assert_eq!(found, format!("{:016x}", 0xAA));
                assert_eq!(expected, format!("{:016x}", 0xBB));
            }
            other => panic!("expected KeyMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn racing_writers_of_one_key_leave_one_valid_entry() {
        // Two threads hammering the SAME key with different payloads while
        // a reader polls it: atomic tmp+rename must guarantee the reader
        // never sees a torn entry (`Corrupt`), and the final state is
        // exactly one valid entry holding one of the written values.
        let dir = scratch_dir("same-key");
        let cache = DiskCache::open(&dir, "test-payload", 1).unwrap();
        const KEY: u64 = 0xD0D0;
        const ROUNDS: u64 = 200;
        std::thread::scope(|s| {
            for writer in 0..2u64 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..ROUNDS {
                        cache.put(KEY, &vec![writer, i]).unwrap();
                    }
                });
            }
            let cache = &cache;
            s.spawn(move || {
                for _ in 0..ROUNDS {
                    match cache.get::<Vec<u64>>(KEY) {
                        Ok(None) => {} // not yet published
                        Ok(Some(v)) => {
                            assert_eq!(v.len(), 2, "torn payload: {v:?}");
                            assert!(v[0] < 2 && v[1] < ROUNDS, "foreign payload: {v:?}");
                        }
                        Err(e) => panic!("reader saw a corrupt entry mid-race: {e}"),
                    }
                }
            });
        });
        let last = cache.get::<Vec<u64>>(KEY).unwrap().expect("entry exists");
        assert_eq!(last[1], ROUNDS - 1, "final entry is some writer's last put");
        // Exactly one entry file for the key, and no temp droppings.
        let files: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(files, vec![format!("{KEY:016x}.json")], "{files:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn age_entry(cache: &DiskCache, key: u64, secs_ago: u64) {
        let f = std::fs::File::options()
            .write(true)
            .open(cache.entry_path(key))
            .unwrap();
        f.set_modified(SystemTime::now() - Duration::from_secs(secs_ago))
            .unwrap();
    }

    #[test]
    fn gc_evicts_oldest_first_until_under_budget() {
        let dir = scratch_dir("gc-lru");
        let writer = DiskCache::open(&dir, "test-payload", 1).unwrap();
        // Five entries of identical size, aged 50s..10s (key 1 oldest).
        for k in 1..=5u64 {
            writer.put(k, &vec![k; 16]).unwrap();
            age_entry(&writer, k, 60 - k * 10);
        }
        let per_entry = writer.total_bytes().unwrap() / 5;
        // A fresh handle (nothing touched) GCs down to a 3-entry budget:
        // the two oldest go, the three newest stay.
        let gc = DiskCache::open(&dir, "test-payload", 1).unwrap();
        let report = gc.gc(3 * per_entry).unwrap();
        assert_eq!(report.examined, 5);
        assert_eq!(report.evicted, 2);
        assert_eq!(report.evicted_bytes, 2 * per_entry);
        assert_eq!(report.kept, 3);
        assert_eq!(report.protected, 0);
        assert!(report.met_budget(3 * per_entry), "{report:?}");
        assert_eq!(gc.total_bytes().unwrap(), 3 * per_entry);
        for k in 1..=2u64 {
            assert_eq!(gc.get::<Vec<u64>>(k).unwrap(), None, "key {k} evicted");
        }
        for k in 3..=5u64 {
            assert!(gc.get::<Vec<u64>>(k).unwrap().is_some(), "key {k} kept");
        }
        // Idempotent: already under budget, nothing more to do.
        let again = gc.gc(3 * per_entry).unwrap();
        assert_eq!(again.evicted, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_never_evicts_the_current_runs_entries() {
        let dir = scratch_dir("gc-protect");
        // An earlier run left two old entries behind...
        let old_run = DiskCache::open(&dir, "test-payload", 1).unwrap();
        old_run.put(100, &vec![0u64; 16]).unwrap();
        old_run.put(101, &vec![0u64; 16]).unwrap();
        age_entry(&old_run, 100, 1000);
        age_entry(&old_run, 101, 900);
        // ...and the current run wrote one entry and hit another.
        let current = DiskCache::open(&dir, "test-payload", 1).unwrap();
        current.put(200, &vec![7u64; 16]).unwrap();
        assert!(current.get::<Vec<u64>>(101).unwrap().is_some());
        assert!(current.is_protected(200) && current.is_protected(101));
        assert!(!current.is_protected(100));
        // Budget of zero: everything MUST go except the protected pair,
        // even though the budget cannot be met without them.
        let report = current.gc(0).unwrap();
        assert_eq!(report.evicted, 1, "{report:?}"); // only the untouched 100
        assert_eq!(report.protected, 2, "{report:?}");
        assert!(!report.met_budget(0), "{report:?}");
        assert!(current.get::<Vec<u64>>(200).unwrap().is_some());
        assert!(current.get::<Vec<u64>>(101).unwrap().is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_sweeps_stale_tmp_droppings_but_not_fresh_ones() {
        let dir = scratch_dir("gc-tmp");
        let cache = DiskCache::open(&dir, "test-payload", 1).unwrap();
        cache.put(1, &1u32).unwrap();
        // A dropping from a writer killed between write and rename...
        let stale = dir.join(".00000000000000aa.999.0.tmp");
        std::fs::write(&stale, b"half-written").unwrap();
        std::fs::File::options()
            .write(true)
            .open(&stale)
            .unwrap()
            .set_modified(SystemTime::now() - (TMP_MAX_AGE + Duration::from_secs(60)))
            .unwrap();
        // ...and a fresh temp file of a (hypothetical) live writer.
        let fresh = dir.join(".00000000000000bb.998.0.tmp");
        std::fs::write(&fresh, b"about to publish").unwrap();
        let report = cache.gc(u64::MAX).unwrap();
        assert_eq!(report.tmp_removed, 1, "{report:?}");
        assert!(!stale.exists(), "stale dropping reclaimed");
        assert!(fresh.exists(), "live writer's temp file untouched");
        assert_eq!(report.evicted, 0, "no entries over budget");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entry_scan_ignores_foreign_files() {
        let dir = scratch_dir("gc-scan");
        let cache = DiskCache::open(&dir, "test-payload", 1).unwrap();
        cache.put(0xCAFE, &vec![1u8, 2, 3]).unwrap();
        std::fs::write(dir.join("README.txt"), b"not an entry").unwrap();
        std::fs::write(dir.join("deadbeef.json"), b"short hex name").unwrap();
        std::fs::write(dir.join(".0000000000000001.1.0.tmp"), b"tmp").unwrap();
        let entries = cache.entries().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].key, 0xCAFE);
        assert!(entries[0].bytes > 0);
        assert_eq!(cache.total_bytes().unwrap(), entries[0].bytes);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_agree() {
        let dir = scratch_dir("concurrent");
        let cache = DiskCache::open(&dir, "test-payload", 1).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = &cache;
                s.spawn(move || {
                    for k in 0..32u64 {
                        cache.put(k, &vec![k, k * 2]).unwrap();
                    }
                });
            }
        });
        for k in 0..32u64 {
            assert_eq!(cache.get::<Vec<u64>>(k).unwrap(), Some(vec![k, k * 2]));
        }
        // No temp droppings left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
