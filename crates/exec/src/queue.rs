//! A submit/drain queue for service workloads.
//!
//! [`Executor::map_indexed`](crate::Executor::map_indexed) wants the whole
//! task grid up front — the right shape for sweeps, the wrong one for a
//! server that receives requests one at a time. [`ServiceQueue`] bridges
//! the two: producers [`submit`](ServiceQueue::submit) items as they
//! arrive (each gets a monotonically increasing ticket), and a consumer
//! periodically [`drain`](ServiceQueue::drain_with)s everything pending as
//! one batch onto the executor. Results come back in submission order, so
//! a caller matching responses to requests only needs the batch offset.
//!
//! The queue is `Sync`: any number of threads may submit concurrently
//! while another drains. Draining takes the entire pending batch
//! atomically — items submitted mid-drain land in the *next* batch, which
//! is what keeps ticket order and result order identical within a batch.
//! A consumer implementing a batching *window* sleeps on
//! [`wait_nonempty`](ServiceQueue::wait_nonempty) (submits signal a
//! condvar) instead of polling, and can
//! [`discard_if`](ServiceQueue::discard_if) items whose producer has gone
//! away before spending executor time on them.
//!
//! Admission is bounded, not best-effort: a queue built with
//! [`with_capacity`](ServiceQueue::with_capacity) refuses submits beyond
//! its capacity ([`SubmitError::AtCapacity`]) instead of growing without
//! limit under a producer that outruns the consumer, and a consumer that
//! exits [`close`](ServiceQueue::close)s the queue so later submits fail
//! loudly ([`SubmitError::Closed`]) rather than accumulating items nobody
//! will ever drain.
//!
//! ```
//! use portopt_exec::{Executor, ServiceQueue};
//!
//! let queue: ServiceQueue<u32> = ServiceQueue::new();
//! let t0 = queue.submit(10).unwrap();
//! let t1 = queue.submit(20).unwrap();
//! assert_eq!((t0, t1), (0, 1)); // tickets ascend in submission order
//!
//! let replies = queue.drain_with(&Executor::new(2), |&x| x + 1);
//! assert_eq!(replies, vec![(0, 11), (1, 21)]); // results match tickets
//! assert!(queue.is_empty()); // the batch was taken atomically
//! ```

use crate::Executor;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A monotonically increasing identifier handed out by
/// [`ServiceQueue::submit`], unique within one queue's lifetime.
pub type Ticket = u64;

/// Why [`ServiceQueue::submit`] refused an item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue already holds `capacity` items: the consumer is behind.
    /// Admission control — the producer should shed the item (answer
    /// "overloaded") and retry later, not buffer it.
    AtCapacity {
        /// The bound the queue was built with.
        capacity: usize,
    },
    /// The consumer is gone ([`ServiceQueue::close`] was called): nothing
    /// will ever drain this queue again, so accepting the item would leak
    /// it (and its producer would wait forever for a reply).
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::AtCapacity { capacity } => {
                write!(f, "queue at capacity ({capacity} items pending)")
            }
            SubmitError::Closed => write!(f, "queue closed: its consumer is gone"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Lock-protected queue state. The ticket counter lives *inside* the
/// mutex: assigning tickets outside it would let a preempted submitter
/// push a lower ticket after a higher one, breaking the "tickets ascend
/// within a batch" contract drain_with's callers rely on.
#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<(Ticket, T)>,
    next: Ticket,
    /// `Some(n)`: refuse submits while `items.len() >= n`.
    capacity: Option<usize>,
    /// Set by [`ServiceQueue::close`]; submits fail from then on.
    closed: bool,
}

/// A thread-safe accumulate-then-batch queue over an [`Executor`].
#[derive(Debug)]
pub struct ServiceQueue<T> {
    state: Mutex<Inner<T>>,
    /// Signalled on every submit, so a consumer can sleep between batches
    /// instead of polling ([`wait_nonempty`](ServiceQueue::wait_nonempty)).
    available: Condvar,
}

impl<T> Default for ServiceQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ServiceQueue<T> {
    /// Creates an empty, unbounded queue.
    pub fn new() -> Self {
        ServiceQueue {
            state: Mutex::new(Inner {
                items: VecDeque::new(),
                next: 0,
                capacity: None,
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Creates an empty queue refusing submits beyond `capacity` (≥ 1)
    /// pending items.
    pub fn with_capacity(capacity: usize) -> Self {
        let q = Self::new();
        q.set_capacity(Some(capacity));
        q
    }

    /// Sets (or clears, with `None`) the admission bound. Items already
    /// pending are unaffected — shrinking below the current length only
    /// refuses *new* submits until the consumer catches up.
    pub fn set_capacity(&self, capacity: Option<usize>) {
        self.state.lock().expect("queue lock").capacity = capacity.map(|c| c.max(1));
    }

    /// The admission bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.state.lock().expect("queue lock").capacity
    }

    /// Marks the queue closed: every later [`submit`](Self::submit) fails
    /// with [`SubmitError::Closed`]. Called by the consumer when it stops
    /// draining for good, so producers racing the shutdown get a typed
    /// error instead of growing a queue nobody will ever empty. Items
    /// already pending stay drainable (the consumer's final flush).
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        // Wake any consumer parked in wait_nonempty so it can observe
        // the closure and exit.
        self.available.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }

    /// Enqueues one item; returns its ticket — or a typed refusal when
    /// the queue is at capacity or closed (the item is handed back inside
    /// the error path untouched; nothing is enqueued).
    pub fn submit(&self, item: T) -> Result<Ticket, SubmitError> {
        let mut g = self.state.lock().expect("queue lock");
        if g.closed {
            return Err(SubmitError::Closed);
        }
        if let Some(cap) = g.capacity {
            if g.items.len() >= cap {
                return Err(SubmitError::AtCapacity { capacity: cap });
            }
        }
        let t = g.next;
        g.next += 1;
        g.items.push_back((t, item));
        self.available.notify_all();
        Ok(t)
    }

    /// Blocks until at least one item is pending or `timeout` elapses;
    /// returns whether anything is pending. The consumer side of a
    /// batching window: sleep here while idle, then gather for the window
    /// and [`drain_with`](ServiceQueue::drain_with). Returns immediately
    /// (reporting nothing pending) once the queue is empty **and**
    /// [`close`](Self::close)d — nothing can arrive anymore.
    ///
    /// ```
    /// use portopt_exec::ServiceQueue;
    /// use std::time::Duration;
    ///
    /// let q: ServiceQueue<u8> = ServiceQueue::new();
    /// // Empty queue: the wait times out and reports nothing pending.
    /// assert!(!q.wait_nonempty(Duration::from_millis(1)));
    /// q.submit(9).unwrap();
    /// // Non-empty queue: returns true immediately, nothing is consumed.
    /// assert!(q.wait_nonempty(Duration::from_secs(60)));
    /// assert_eq!(q.len(), 1);
    /// ```
    pub fn wait_nonempty(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = self.state.lock().expect("queue lock");
        loop {
            if !g.items.is_empty() {
                return true;
            }
            if g.closed {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _timed_out) = self
                .available
                .wait_timeout(g, deadline - now)
                .expect("queue lock");
            g = guard;
        }
    }

    /// Removes every pending item matching `pred` without running it;
    /// returns how many were removed. Remaining items keep their tickets
    /// and their submission order. Used by the serving layer to throw away
    /// requests whose connection died before their batch ran — their
    /// replies could never be delivered, so the executor time would be
    /// wasted.
    ///
    /// ```
    /// use portopt_exec::ServiceQueue;
    ///
    /// let q: ServiceQueue<(u64, &str)> = ServiceQueue::new();
    /// q.submit((1, "keep")).unwrap();
    /// q.submit((2, "dead")).unwrap();
    /// q.submit((1, "keep too")).unwrap();
    /// assert_eq!(q.discard_if(|&(conn, _)| conn == 2), 1);
    /// let left = q.take_batch();
    /// assert_eq!(left.len(), 2);
    /// assert_eq!((left[0].0, left[1].0), (0, 2)); // survivors keep tickets
    /// ```
    pub fn discard_if(&self, mut pred: impl FnMut(&T) -> bool) -> usize {
        let mut g = self.state.lock().expect("queue lock");
        let before = g.items.len();
        g.items.retain(|(_, item)| !pred(item));
        before - g.items.len()
    }

    /// Number of items waiting to be drained.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes every pending item (in submission order), leaving the queue
    /// empty. Items submitted after this call land in the next batch.
    pub fn take_batch(&self) -> Vec<(Ticket, T)> {
        let batch: Vec<(Ticket, T)> = self
            .state
            .lock()
            .expect("queue lock")
            .items
            .drain(..)
            .collect();
        if !batch.is_empty() {
            // Depth sample for the trace file: how full the queue ran at
            // each drain is the serving layer's queue-wait signal.
            portopt_trace::trace!("exec.queue", { depth = batch.len() }, "batch drained");
        }
        batch
    }

    /// Drains the pending batch through `f` on the executor and returns
    /// `(ticket, result)` pairs in submission order. The executor's
    /// determinism contract carries over: for a given batch the output is
    /// independent of the worker-thread count.
    pub fn drain_with<R, F>(&self, exec: &Executor, f: F) -> Vec<(Ticket, R)>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let batch = self.take_batch();
        let results = exec.map_indexed(batch.len(), |i| f(&batch[i].1));
        batch
            .into_iter()
            .zip(results)
            .map(|((t, _), r)| (t, r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tickets_are_sequential_and_results_ordered() {
        let q: ServiceQueue<u64> = ServiceQueue::new();
        let tickets: Vec<Ticket> = (0..100).map(|i| q.submit(i).unwrap()).collect();
        assert_eq!(tickets, (0..100).collect::<Vec<_>>());
        assert_eq!(q.len(), 100);
        let out = q.drain_with(&Executor::new(4), |&x| x * 3);
        assert!(q.is_empty());
        assert_eq!(out.len(), 100);
        for (i, (t, r)) in out.iter().enumerate() {
            assert_eq!(*t, i as u64);
            assert_eq!(*r, i as u64 * 3);
        }
    }

    #[test]
    fn drain_of_empty_queue_is_empty() {
        let q: ServiceQueue<u8> = ServiceQueue::new();
        let out = q.drain_with(&Executor::new(2), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn items_submitted_after_drain_form_the_next_batch() {
        let q: ServiceQueue<&'static str> = ServiceQueue::new();
        q.submit("a").unwrap();
        let first = q.take_batch();
        let t = q.submit("b").unwrap();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].1, "a");
        assert_eq!(t, 1);
        let second = q.take_batch();
        assert_eq!(second, vec![(1, "b")]);
    }

    #[test]
    fn wait_nonempty_wakes_on_submit() {
        use std::time::Duration;
        let q: ServiceQueue<u32> = ServiceQueue::new();
        assert!(
            !q.wait_nonempty(Duration::from_millis(5)),
            "empty → timeout"
        );
        std::thread::scope(|s| {
            let waiter = s.spawn(|| q.wait_nonempty(Duration::from_secs(30)));
            std::thread::sleep(Duration::from_millis(10));
            q.submit(1).unwrap();
            assert!(waiter.join().unwrap(), "submit must wake the waiter");
        });
        // Still pending: wait_nonempty consumes nothing.
        assert_eq!(q.len(), 1);
        assert!(q.wait_nonempty(Duration::from_millis(1)));
    }

    #[test]
    fn discard_if_keeps_order_and_tickets() {
        let q: ServiceQueue<usize> = ServiceQueue::new();
        for i in 0..10 {
            q.submit(i).unwrap();
        }
        assert_eq!(q.discard_if(|&x| x % 3 == 0), 4); // 0, 3, 6, 9
        let left = q.take_batch();
        let tickets: Vec<Ticket> = left.iter().map(|&(t, _)| t).collect();
        let values: Vec<usize> = left.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, vec![1, 2, 4, 5, 7, 8]);
        assert_eq!(tickets, vec![1, 2, 4, 5, 7, 8]);
        // Ticket numbering continues from where it was.
        assert_eq!(q.submit(99).unwrap(), 10);
        assert_eq!(q.discard_if(|_| false), 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn bounded_queue_refuses_at_capacity_and_recovers_after_drain() {
        let q: ServiceQueue<u32> = ServiceQueue::with_capacity(3);
        assert_eq!(q.capacity(), Some(3));
        for i in 0..3 {
            q.submit(i).unwrap();
        }
        // The bound is a hard ceiling: the resident length never exceeds
        // the capacity, however many submits are attempted.
        for i in 0..50 {
            assert_eq!(
                q.submit(100 + i),
                Err(SubmitError::AtCapacity { capacity: 3 }),
                "submit {i} beyond capacity must be refused"
            );
            assert_eq!(q.len(), 3);
        }
        // Draining frees the whole capacity; refused items were never
        // enqueued, so the batch holds exactly the admitted ones.
        let batch = q.take_batch();
        assert_eq!(batch.len(), 3);
        assert_eq!(
            q.submit(7).unwrap(),
            3,
            "tickets were not burned on refusals"
        );
        // Shrinking below the pending length refuses new submits only.
        q.set_capacity(Some(1));
        assert!(matches!(
            q.submit(8),
            Err(SubmitError::AtCapacity { capacity: 1 })
        ));
        // Clearing the bound restores unbounded admission.
        q.set_capacity(None);
        q.submit(8).unwrap();
        assert_eq!(q.len(), 2);
    }

    /// The dropped-batcher hazard: once the consumer is gone, submits
    /// must fail with a typed error instead of silently growing a queue
    /// nobody will ever drain.
    #[test]
    fn closed_queue_refuses_submits_but_drains_whats_pending() {
        let q: ServiceQueue<&'static str> = ServiceQueue::new();
        q.submit("before").unwrap();
        assert!(!q.is_closed());
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.submit("after"), Err(SubmitError::Closed));
        assert_eq!(q.len(), 1, "refused submit must not grow the queue");
        // The consumer's final flush still sees what was admitted.
        let batch = q.take_batch();
        assert_eq!(batch, vec![(0, "before")]);
        // Still closed afterwards: closure is permanent.
        assert_eq!(q.submit("later"), Err(SubmitError::Closed));
        assert!(q.is_empty());
    }

    #[test]
    fn close_wakes_a_parked_consumer() {
        use std::time::Duration;
        let q: ServiceQueue<u8> = ServiceQueue::new();
        std::thread::scope(|s| {
            let waiter = s.spawn(|| {
                let started = std::time::Instant::now();
                let pending = q.wait_nonempty(Duration::from_secs(30));
                (pending, started.elapsed())
            });
            std::thread::sleep(Duration::from_millis(20));
            q.close();
            let (pending, waited) = waiter.join().unwrap();
            assert!(!pending, "nothing was submitted");
            assert!(
                waited < Duration::from_secs(5),
                "close must wake the parked consumer, waited {waited:?}"
            );
        });
    }

    #[test]
    fn concurrent_submitters_lose_nothing() {
        let q: ServiceQueue<usize> = ServiceQueue::new();
        std::thread::scope(|s| {
            for w in 0..4 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..250 {
                        q.submit(w * 250 + i).unwrap();
                    }
                });
            }
        });
        let drained = q.drain_with(&Executor::new(2), |&x| x);
        // Tickets ascend within the batch even under concurrent submission.
        for pair in drained.windows(2) {
            assert!(pair[0].0 < pair[1].0, "{:?} !< {:?}", pair[0].0, pair[1].0);
        }
        let mut out: Vec<usize> = drained.into_iter().map(|(_, r)| r).collect();
        out.sort_unstable();
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }
}
