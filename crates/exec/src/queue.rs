//! A submit/drain queue for service workloads.
//!
//! [`Executor::map_indexed`](crate::Executor::map_indexed) wants the whole
//! task grid up front — the right shape for sweeps, the wrong one for a
//! server that receives requests one at a time. [`ServiceQueue`] bridges
//! the two: producers [`submit`](ServiceQueue::submit) items as they
//! arrive (each gets a monotonically increasing ticket), and a consumer
//! periodically [`drain`](ServiceQueue::drain_with)s everything pending as
//! one batch onto the executor. Results come back in submission order, so
//! a caller matching responses to requests only needs the batch offset.
//!
//! The queue is `Sync`: any number of threads may submit concurrently
//! while another drains. Draining takes the entire pending batch
//! atomically — items submitted mid-drain land in the *next* batch, which
//! is what keeps ticket order and result order identical within a batch.
//! A consumer implementing a batching *window* sleeps on
//! [`wait_nonempty`](ServiceQueue::wait_nonempty) (submits signal a
//! condvar) instead of polling, and can
//! [`discard_if`](ServiceQueue::discard_if) items whose producer has gone
//! away before spending executor time on them.
//!
//! ```
//! use portopt_exec::{Executor, ServiceQueue};
//!
//! let queue: ServiceQueue<u32> = ServiceQueue::new();
//! let t0 = queue.submit(10);
//! let t1 = queue.submit(20);
//! assert_eq!((t0, t1), (0, 1)); // tickets ascend in submission order
//!
//! let replies = queue.drain_with(&Executor::new(2), |&x| x + 1);
//! assert_eq!(replies, vec![(0, 11), (1, 21)]); // results match tickets
//! assert!(queue.is_empty()); // the batch was taken atomically
//! ```

use crate::Executor;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A monotonically increasing identifier handed out by
/// [`ServiceQueue::submit`], unique within one queue's lifetime.
pub type Ticket = u64;

/// Lock-protected queue state. The ticket counter lives *inside* the
/// mutex: assigning tickets outside it would let a preempted submitter
/// push a lower ticket after a higher one, breaking the "tickets ascend
/// within a batch" contract drain_with's callers rely on.
#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<(Ticket, T)>,
    next: Ticket,
}

/// A thread-safe accumulate-then-batch queue over an [`Executor`].
#[derive(Debug)]
pub struct ServiceQueue<T> {
    state: Mutex<Inner<T>>,
    /// Signalled on every submit, so a consumer can sleep between batches
    /// instead of polling ([`wait_nonempty`](ServiceQueue::wait_nonempty)).
    available: Condvar,
}

impl<T> Default for ServiceQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ServiceQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ServiceQueue {
            state: Mutex::new(Inner {
                items: VecDeque::new(),
                next: 0,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues one item; returns its ticket.
    pub fn submit(&self, item: T) -> Ticket {
        let mut g = self.state.lock().expect("queue lock");
        let t = g.next;
        g.next += 1;
        g.items.push_back((t, item));
        self.available.notify_all();
        t
    }

    /// Blocks until at least one item is pending or `timeout` elapses;
    /// returns whether anything is pending. The consumer side of a
    /// batching window: sleep here while idle, then gather for the window
    /// and [`drain_with`](ServiceQueue::drain_with).
    ///
    /// ```
    /// use portopt_exec::ServiceQueue;
    /// use std::time::Duration;
    ///
    /// let q: ServiceQueue<u8> = ServiceQueue::new();
    /// // Empty queue: the wait times out and reports nothing pending.
    /// assert!(!q.wait_nonempty(Duration::from_millis(1)));
    /// q.submit(9);
    /// // Non-empty queue: returns true immediately, nothing is consumed.
    /// assert!(q.wait_nonempty(Duration::from_secs(60)));
    /// assert_eq!(q.len(), 1);
    /// ```
    pub fn wait_nonempty(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = self.state.lock().expect("queue lock");
        loop {
            if !g.items.is_empty() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _timed_out) = self
                .available
                .wait_timeout(g, deadline - now)
                .expect("queue lock");
            g = guard;
        }
    }

    /// Removes every pending item matching `pred` without running it;
    /// returns how many were removed. Remaining items keep their tickets
    /// and their submission order. Used by the serving layer to throw away
    /// requests whose connection died before their batch ran — their
    /// replies could never be delivered, so the executor time would be
    /// wasted.
    ///
    /// ```
    /// use portopt_exec::ServiceQueue;
    ///
    /// let q: ServiceQueue<(u64, &str)> = ServiceQueue::new();
    /// q.submit((1, "keep"));
    /// q.submit((2, "dead"));
    /// q.submit((1, "keep too"));
    /// assert_eq!(q.discard_if(|&(conn, _)| conn == 2), 1);
    /// let left = q.take_batch();
    /// assert_eq!(left.len(), 2);
    /// assert_eq!((left[0].0, left[1].0), (0, 2)); // survivors keep tickets
    /// ```
    pub fn discard_if(&self, mut pred: impl FnMut(&T) -> bool) -> usize {
        let mut g = self.state.lock().expect("queue lock");
        let before = g.items.len();
        g.items.retain(|(_, item)| !pred(item));
        before - g.items.len()
    }

    /// Number of items waiting to be drained.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes every pending item (in submission order), leaving the queue
    /// empty. Items submitted after this call land in the next batch.
    pub fn take_batch(&self) -> Vec<(Ticket, T)> {
        self.state
            .lock()
            .expect("queue lock")
            .items
            .drain(..)
            .collect()
    }

    /// Drains the pending batch through `f` on the executor and returns
    /// `(ticket, result)` pairs in submission order. The executor's
    /// determinism contract carries over: for a given batch the output is
    /// independent of the worker-thread count.
    pub fn drain_with<R, F>(&self, exec: &Executor, f: F) -> Vec<(Ticket, R)>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let batch = self.take_batch();
        let results = exec.map_indexed(batch.len(), |i| f(&batch[i].1));
        batch
            .into_iter()
            .zip(results)
            .map(|((t, _), r)| (t, r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tickets_are_sequential_and_results_ordered() {
        let q: ServiceQueue<u64> = ServiceQueue::new();
        let tickets: Vec<Ticket> = (0..100).map(|i| q.submit(i)).collect();
        assert_eq!(tickets, (0..100).collect::<Vec<_>>());
        assert_eq!(q.len(), 100);
        let out = q.drain_with(&Executor::new(4), |&x| x * 3);
        assert!(q.is_empty());
        assert_eq!(out.len(), 100);
        for (i, (t, r)) in out.iter().enumerate() {
            assert_eq!(*t, i as u64);
            assert_eq!(*r, i as u64 * 3);
        }
    }

    #[test]
    fn drain_of_empty_queue_is_empty() {
        let q: ServiceQueue<u8> = ServiceQueue::new();
        let out = q.drain_with(&Executor::new(2), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn items_submitted_after_drain_form_the_next_batch() {
        let q: ServiceQueue<&'static str> = ServiceQueue::new();
        q.submit("a");
        let first = q.take_batch();
        let t = q.submit("b");
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].1, "a");
        assert_eq!(t, 1);
        let second = q.take_batch();
        assert_eq!(second, vec![(1, "b")]);
    }

    #[test]
    fn wait_nonempty_wakes_on_submit() {
        use std::time::Duration;
        let q: ServiceQueue<u32> = ServiceQueue::new();
        assert!(
            !q.wait_nonempty(Duration::from_millis(5)),
            "empty → timeout"
        );
        std::thread::scope(|s| {
            let waiter = s.spawn(|| q.wait_nonempty(Duration::from_secs(30)));
            std::thread::sleep(Duration::from_millis(10));
            q.submit(1);
            assert!(waiter.join().unwrap(), "submit must wake the waiter");
        });
        // Still pending: wait_nonempty consumes nothing.
        assert_eq!(q.len(), 1);
        assert!(q.wait_nonempty(Duration::from_millis(1)));
    }

    #[test]
    fn discard_if_keeps_order_and_tickets() {
        let q: ServiceQueue<usize> = ServiceQueue::new();
        for i in 0..10 {
            q.submit(i);
        }
        assert_eq!(q.discard_if(|&x| x % 3 == 0), 4); // 0, 3, 6, 9
        let left = q.take_batch();
        let tickets: Vec<Ticket> = left.iter().map(|&(t, _)| t).collect();
        let values: Vec<usize> = left.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, vec![1, 2, 4, 5, 7, 8]);
        assert_eq!(tickets, vec![1, 2, 4, 5, 7, 8]);
        // Ticket numbering continues from where it was.
        assert_eq!(q.submit(99), 10);
        assert_eq!(q.discard_if(|_| false), 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn concurrent_submitters_lose_nothing() {
        let q: ServiceQueue<usize> = ServiceQueue::new();
        std::thread::scope(|s| {
            for w in 0..4 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..250 {
                        q.submit(w * 250 + i);
                    }
                });
            }
        });
        let drained = q.drain_with(&Executor::new(2), |&x| x);
        // Tickets ascend within the batch even under concurrent submission.
        for pair in drained.windows(2) {
            assert!(pair[0].0 < pair[1].0, "{:?} !< {:?}", pair[0].0, pair[1].0);
        }
        let mut out: Vec<usize> = drained.into_iter().map(|(_, r)| r).collect();
        out.sort_unstable();
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }
}
