//! # portopt-exec
//!
//! The shared parallel-execution subsystem: a chunked **work-stealing
//! executor** over an indexed task grid, used by every sweep in the
//! workspace (dataset generation, the leave-one-out harness, the figure
//! binaries).
//!
//! ## Determinism contract
//!
//! [`Executor::map_indexed`] evaluates a pure function `f(i)` for every
//! index `i < n` and returns the results **in index order**, regardless of
//! the number of worker threads or how the scheduler interleaves them.
//! Workers race only over *which* thread computes a task, never over what
//! the task computes or where its result lands; as long as `f` is a pure
//! function of its index, the output vector is bit-for-bit identical for
//! any thread count (including 1). Every sweep in `portopt` is built on
//! this property — `portopt_core::dataset::generate` asserts it in its
//! `generation_is_deterministic` test.
//!
//! ```
//! use portopt_exec::Executor;
//!
//! let task = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(7);
//! let on_one_thread: Vec<u64> = (0..100).map(task).collect();
//! // Same grid on 4 workers: same vector, whatever the interleaving was.
//! assert_eq!(Executor::new(4).map_indexed(100, task), on_one_thread);
//! ```
//!
//! ## Scheduling
//!
//! The index range is split into one contiguous shard per worker. Each
//! worker pops small chunks from the *front* of its own shard and, when its
//! shard runs dry, steals the *back half* of the richest remaining shard.
//! Chunks keep neighbouring tasks (which tend to touch the same program)
//! on one core; stealing keeps all cores busy when per-task cost is skewed
//! — the situation a `(program, setting)` grid is always in, since compile
//! and profile times vary by orders of magnitude across settings.
//!
//! A panic in any task is re-raised to the caller; sibling workers stop at
//! their next idle point rather than spinning on work that can no longer
//! complete.
//!
//! For workloads that arrive one item at a time instead of as a grid (the
//! `portopt-serve` prediction service), [`queue::ServiceQueue`] accumulates
//! submissions and drains them as batches onto the same executor.
//!
//! ## Observability
//!
//! Every `map_indexed` call runs inside a `portopt_trace` span and
//! reports steal/park counters plus aggregate compute-vs-idle
//! microseconds (a `debug`-level event and span-close fields); queue
//! drains emit `trace`-level depth samples. With tracing unsinked and
//! below the stderr filter the cost is a few relaxed atomics per chunk.

#![warn(missing_docs)]

pub mod cache;
pub mod queue;

pub use cache::{CacheEntryInfo, CacheError, CacheStats, DiskCache, GcReport};
pub use queue::{ServiceQueue, SubmitError, Ticket};

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of threads the host advertises (cgroup-aware); 1 if unknown.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Resolves a user-facing thread-count request: `0` means "auto" (use
/// [`available_threads`]); any other value is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// A work-stealing executor with a fixed worker count.
///
/// Cheap to construct (no threads are kept alive between calls — workers
/// are scoped to each [`map_indexed`](Executor::map_indexed) call, so an
/// `Executor` can be created per sweep without pool-lifecycle concerns).
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// Creates an executor; `threads == 0` selects all available cores.
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: resolve_threads(threads),
        }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluates `f(0..n)` across the workers and returns the results in
    /// index order. See the crate docs for the determinism contract.
    ///
    /// # Panics
    /// Re-raises the first panic observed in any task.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n).max(1);
        let sp = portopt_trace::span(
            "exec",
            "map_indexed",
            &[("n", n.into()), ("workers", workers.into())],
        );
        if workers == 1 {
            let out: Vec<T> = (0..n).map(f).collect();
            let compute_us = sp.elapsed_us();
            portopt_trace::debug!(
                "exec",
                {
                    n = n,
                    workers = 1u64,
                    steals = 0u64,
                    parks = 0u64,
                    compute_us = compute_us,
                    idle_us = 0u64
                },
                "map_indexed drained"
            );
            sp.close_with(&[
                ("steals", 0u64.into()),
                ("parks", 0u64.into()),
                ("compute_us", compute_us.into()),
                ("idle_us", 0u64.into()),
            ]);
            return out;
        }

        // One contiguous shard per worker; chunks keep neighbours together.
        let chunk = (n / (workers * 8)).max(1);
        let shards: Vec<Mutex<(usize, usize)>> = (0..workers)
            .map(|w| {
                let lo = n * w / workers;
                let hi = n * (w + 1) / workers;
                Mutex::new((lo, hi))
            })
            .collect();

        let state = SharedState {
            remaining: AtomicUsize::new(n),
            panicked: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            compute_us: AtomicU64::new(0),
            idle_us: AtomicU64::new(0),
        };
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let shards = &shards;
                    let state = &state;
                    let f = &f;
                    s.spawn(move || worker_loop(shards, state, w, chunk, f))
                })
                .collect();
            // `join` forwards a worker panic; remaining workers drain their
            // tasks first because `scope` joins every handle.
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(part) => part,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let steals = state.steals.load(Ordering::Relaxed);
        let parks = state.parks.load(Ordering::Relaxed);
        let compute_us = state.compute_us.load(Ordering::Relaxed);
        let idle_us = state.idle_us.load(Ordering::Relaxed);
        portopt_trace::debug!(
            "exec",
            {
                n = n,
                workers = workers,
                steals = steals,
                parks = parks,
                compute_us = compute_us,
                idle_us = idle_us
            },
            "map_indexed drained"
        );
        sp.close_with(&[
            ("steals", steals.into()),
            ("parks", parks.into()),
            ("compute_us", compute_us.into()),
            ("idle_us", idle_us.into()),
        ]);
        for (i, v) in parts.into_iter().flatten() {
            slots[i] = Some(v);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index covered exactly once"))
            .collect()
    }

    /// Maps `f` over a slice, returning results in input order (a
    /// convenience wrapper over [`map_indexed`](Executor::map_indexed)).
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.map_indexed(items.len(), |i| f(&items[i]))
    }
}

impl Default for Executor {
    /// An executor over all available cores.
    fn default() -> Self {
        Executor::new(0)
    }
}

/// Pops up to `chunk` tasks from the front of shard `w`.
fn pop_front(shards: &[Mutex<(usize, usize)>], w: usize, chunk: usize) -> Option<(usize, usize)> {
    let mut g = shards[w].lock().expect("shard lock");
    if g.0 >= g.1 {
        return None;
    }
    let take = chunk.min(g.1 - g.0);
    let r = (g.0, g.0 + take);
    g.0 += take;
    Some(r)
}

/// Steals the back half of the richest shard other than `w`.
fn steal(shards: &[Mutex<(usize, usize)>], w: usize) -> Option<(usize, usize)> {
    // Probe for the victim with the most remaining work; sizes are racy but
    // only steer the choice — the actual claim below is under the lock.
    let victim = shards
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != w)
        .map(|(i, m)| {
            let g = m.lock().expect("shard lock");
            (i, g.1.saturating_sub(g.0))
        })
        .max_by_key(|&(_, rem)| rem)?;
    if victim.1 == 0 {
        return None;
    }
    let mut g = shards[victim.0].lock().expect("shard lock");
    let rem = g.1.saturating_sub(g.0);
    if rem == 0 {
        return None;
    }
    let take = rem.div_ceil(2);
    let r = (g.1 - take, g.1);
    g.1 -= take;
    Some(r)
}

/// Cross-worker progress signals for one `map_indexed` call.
struct SharedState {
    /// Tasks not yet completed; the authoritative retirement signal.
    remaining: AtomicUsize,
    /// Set when any task panicked (its tasks will never complete, so
    /// `remaining` alone would spin the other workers forever).
    panicked: AtomicBool,
    /// Successful steals across all workers (observability only).
    steals: AtomicU64,
    /// Idle-backoff parks (yield or sleep) across all workers.
    parks: AtomicU64,
    /// Microseconds spent computing task chunks, summed over workers.
    compute_us: AtomicU64,
    /// Microseconds spent parked waiting for work, summed over workers.
    idle_us: AtomicU64,
}

fn worker_loop<T, F>(
    shards: &[Mutex<(usize, usize)>],
    state: &SharedState,
    w: usize,
    chunk: usize,
    f: &F,
) -> Vec<(usize, T)>
where
    F: Fn(usize) -> T,
{
    let mut out = Vec::new();
    let mut idle_rounds = 0u32;
    loop {
        if let Some((lo, hi)) = pop_front(shards, w, chunk) {
            idle_rounds = 0;
            let chunk_start = std::time::Instant::now();
            for i in lo..hi {
                // A sibling's panic makes the whole call unwind; abandon
                // the rest of our work instead of computing results that
                // will never be read.
                if state.panicked.load(Ordering::Acquire) {
                    return out;
                }
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))) {
                    Ok(v) => {
                        out.push((i, v));
                        state.remaining.fetch_sub(1, Ordering::Release);
                    }
                    Err(payload) => {
                        state.panicked.store(true, Ordering::Release);
                        std::panic::resume_unwind(payload);
                    }
                }
            }
            state
                .compute_us
                .fetch_add(chunk_start.elapsed().as_micros() as u64, Ordering::Relaxed);
            continue;
        }
        if let Some((lo, hi)) = steal(shards, w) {
            // Stolen work goes back into our (empty) shard so it is
            // chunked normally and can itself be re-stolen.
            idle_rounds = 0;
            state.steals.fetch_add(1, Ordering::Relaxed);
            let mut g = shards[w].lock().expect("shard lock");
            *g = (lo, hi);
            continue;
        }
        // Nothing visible to pop or steal. Retire only once every task has
        // finished (or a sibling panicked): a probe can race with a victim
        // draining, and a stolen range is invisible while in the thief's
        // hands, so `remaining` — not the probe — is the authoritative
        // "no work left anywhere" signal.
        if state.remaining.load(Ordering::Acquire) == 0 || state.panicked.load(Ordering::Acquire) {
            return out;
        }
        // Back off while stragglers finish: yield at first, then sleep, so
        // idle workers neither burn a core nor hammer the shard mutexes
        // under a seconds-long tail task.
        idle_rounds = idle_rounds.saturating_add(1);
        state.parks.fetch_add(1, Ordering::Relaxed);
        let park_start = std::time::Instant::now();
        if idle_rounds < 16 {
            std::thread::yield_now();
        } else {
            let us = 50u64 << (idle_rounds - 16).min(4); // 50µs … 800µs
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
        state
            .idle_us
            .fetch_add(park_start.elapsed().as_micros() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn resolves_zero_to_available() {
        assert_eq!(resolve_threads(0), available_threads());
        assert_eq!(resolve_threads(3), 3);
        assert!(Executor::new(0).threads() >= 1);
    }

    #[test]
    fn identical_results_across_thread_counts() {
        // A task whose value depends only on its index; heavy enough that
        // interleavings differ run to run.
        let task = |i: usize| -> u64 {
            let mut h = i as u64 + 0x9E37_79B9_7F4A_7C15;
            for _ in 0..50 {
                h ^= h >> 33;
                h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            }
            h
        };
        let reference: Vec<u64> = (0..1000).map(task).collect();
        for threads in [1, 2, 8] {
            let got = Executor::new(threads).map_indexed(1000, task);
            assert_eq!(got, reference, "threads = {threads}");
        }
    }

    #[test]
    fn empty_grid() {
        let ex = Executor::new(4);
        let out: Vec<u32> = ex.map_indexed(0, |_| unreachable!("no tasks"));
        assert!(out.is_empty());
        let none: [u8; 0] = [];
        let out2: Vec<u32> = ex.map(&none, |_| unreachable!("no tasks"));
        assert!(out2.is_empty());
    }

    #[test]
    fn one_element_grid() {
        let out = Executor::new(8).map_indexed(1, |i| i + 41);
        assert_eq!(out, vec![41]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..777).map(|_| AtomicUsize::new(0)).collect();
        let out = Executor::new(5).map_indexed(777, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out, (0..777).collect::<Vec<_>>());
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i}");
        }
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<i64> = (0..257).map(|i| i * 3).collect();
        let out = Executor::new(4).map(&items, |&x| x + 1);
        assert_eq!(out, items.iter().map(|x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_task_propagates() {
        for threads in [1, 4] {
            let ex = Executor::new(threads);
            let err = catch_unwind(AssertUnwindSafe(|| {
                ex.map_indexed(64, |i| {
                    if i == 13 {
                        panic!("task 13 exploded");
                    }
                    i
                })
            }))
            .expect_err("panic must propagate");
            let msg = err
                .downcast_ref::<&str>()
                .copied()
                .map(String::from)
                .or_else(|| err.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            assert!(msg.contains("exploded"), "threads {threads}: {msg}");
        }
    }

    #[test]
    fn stealing_balances_skewed_tasks() {
        // Front-loaded cost: without stealing, worker 0 would do almost all
        // the work. We can't observe wall-time reliably on CI, but we can
        // check the result is still correct under heavy skew.
        let out = Executor::new(4).map_indexed(256, |i| {
            if i < 8 {
                let mut acc = 0u64;
                for k in 0..200_000u64 {
                    acc = acc.wrapping_add(k ^ i as u64);
                }
                acc & 1
            } else {
                (i as u64) & 1
            }
        });
        for (i, v) in out.iter().enumerate().skip(8) {
            assert_eq!(*v, (i as u64) & 1);
        }
    }
}
