//! Reading side of the trace-file format: a minimal JSON parser (this
//! crate is dependency-free, so it cannot use the serde shims) plus the
//! header-validated record decoder the `trace` analysis bin and CI's
//! well-formedness check are built on.
//!
//! Mirrors the checkpoint journal's tolerance contract: the header is
//! validated before anything else is believed, complete records are
//! decoded strictly, and a torn final line (process killed mid-append)
//! is reported via [`TraceFile::torn_tail`] rather than failing the
//! whole file.

use std::collections::HashMap;
use std::fmt;

use crate::{TRACE_FORMAT_VERSION, TRACE_MAGIC};

/// A parsed JSON value (just enough JSON for trace records).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (trace files never need >53-bit integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write!(f, "{s}"),
            Json::Arr(_) | Json::Obj(_) => write!(f, "<composite>"),
        }
    }
}

/// Parses one JSON document, requiring it to span the whole input.
pub fn parse_json(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key is not a string: {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => expect_lit(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect_lit(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'n') => expect_lit(b, pos, "null").map(|()| Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number `{text}`: {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs never appear in our own output;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// The validated first line of a trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// Format version the file was written at.
    pub format_version: u32,
    /// Basename of the binary that produced the trace.
    pub bin: String,
    /// Wall-clock start, milliseconds since the unix epoch.
    pub start_unix_ms: u64,
}

/// One decoded trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A leveled structured event.
    Event {
        /// Microseconds since trace start.
        us: u64,
        /// Level name (`"info"`, …).
        level: String,
        /// Emitting subsystem.
        target: String,
        /// Formatted message.
        msg: String,
        /// Structured fields.
        fields: Vec<(String, Json)>,
    },
    /// A span opening.
    SpanOpen {
        /// Microseconds since trace start.
        us: u64,
        /// Process-unique span id.
        id: u64,
        /// Parent span id, if the span was nested.
        parent: Option<u64>,
        /// Emitting subsystem.
        target: String,
        /// Span name (the analysis "stage").
        name: String,
        /// Open fields (e.g. program, setting index).
        fields: Vec<(String, Json)>,
    },
    /// A span closing.
    SpanClose {
        /// Microseconds since trace start.
        us: u64,
        /// Id of the span being closed.
        id: u64,
        /// Monotonic duration of the span.
        dur_us: u64,
        /// Close fields (e.g. `hit = true`).
        fields: Vec<(String, Json)>,
    },
}

/// A fully decoded trace file.
#[derive(Debug)]
pub struct TraceFile {
    /// The validated header.
    pub header: Header,
    /// All complete records, in file order.
    pub records: Vec<TraceRecord>,
    /// True if the file ended mid-line (producer killed mid-append).
    pub torn_tail: bool,
}

fn fields_of(v: &Json) -> Vec<(String, Json)> {
    match v.get("f") {
        Some(Json::Obj(fields)) => fields.clone(),
        _ => Vec::new(),
    }
}

fn req_u64(v: &Json, key: &str, line_no: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {line_no}: missing/invalid `{key}`"))
}

fn req_str(v: &Json, key: &str, line_no: usize) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("line {line_no}: missing/invalid `{key}`"))
}

/// Parses and validates a whole trace file: header first (wrong magic or
/// a future format version are hard errors, as in the checkpoint
/// journal), then every complete line as a record. A final line without
/// its newline is tolerated and flagged as [`TraceFile::torn_tail`]; a
/// *complete* line that does not decode is a hard error — unlike the
/// journal there is no replay to salvage, the file is evidence.
pub fn read_trace(text: &str) -> Result<TraceFile, String> {
    let mut lines = text.split_inclusive('\n');
    let header_line = lines.next().ok_or("empty file".to_string())?;
    if !header_line.ends_with('\n') {
        return Err("torn header line (producer died at creation)".into());
    }
    let h = parse_json(header_line.trim_end()).map_err(|e| format!("header is not JSON: {e}"))?;
    let magic = req_str(&h, "magic", 1)?;
    if magic != TRACE_MAGIC {
        return Err(format!("not a portopt trace file (magic `{magic}`)"));
    }
    let format_version = req_u64(&h, "format_version", 1)? as u32;
    if format_version != TRACE_FORMAT_VERSION {
        return Err(format!(
            "trace format version {format_version} is not supported \
             (this reader understands version {TRACE_FORMAT_VERSION})"
        ));
    }
    let header = Header {
        format_version,
        bin: req_str(&h, "bin", 1).unwrap_or_else(|_| "unknown".into()),
        start_unix_ms: req_u64(&h, "start_unix_ms", 1).unwrap_or(0),
    };

    let mut records = Vec::new();
    let mut torn_tail = false;
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        if !line.ends_with('\n') {
            torn_tail = true;
            break;
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            continue;
        }
        let v = parse_json(trimmed).map_err(|e| format!("line {line_no}: {e}"))?;
        let t = req_str(&v, "t", line_no)?;
        let us = req_u64(&v, "us", line_no)?;
        let rec = match t.as_str() {
            "e" => TraceRecord::Event {
                us,
                level: req_str(&v, "lvl", line_no)?,
                target: req_str(&v, "tgt", line_no)?,
                msg: req_str(&v, "msg", line_no)?,
                fields: fields_of(&v),
            },
            "so" => {
                let parent = req_u64(&v, "parent", line_no)?;
                TraceRecord::SpanOpen {
                    us,
                    id: req_u64(&v, "id", line_no)?,
                    parent: if parent == 0 { None } else { Some(parent) },
                    target: req_str(&v, "tgt", line_no)?,
                    name: req_str(&v, "name", line_no)?,
                    fields: fields_of(&v),
                }
            }
            "sc" => TraceRecord::SpanClose {
                us,
                id: req_u64(&v, "id", line_no)?,
                dur_us: req_u64(&v, "dur_us", line_no)?,
                fields: fields_of(&v),
            },
            other => return Err(format!("line {line_no}: unknown record type `{other}`")),
        };
        records.push(rec);
    }
    Ok(TraceFile {
        header,
        records,
        torn_tail,
    })
}

/// Cross-checks span opens against closes: every close must match an
/// earlier open, and no id may close twice. Returns the ids of spans
/// left open (normal for a torn or mid-flight trace) or an error
/// describing the first violation.
pub fn check_spans(records: &[TraceRecord]) -> Result<Vec<u64>, String> {
    let mut open: HashMap<u64, bool> = HashMap::new(); // id -> closed?
    for (i, r) in records.iter().enumerate() {
        match r {
            TraceRecord::SpanOpen { id, .. } => {
                if open.insert(*id, false).is_some() {
                    return Err(format!("record {i}: span id {id} opened twice"));
                }
            }
            TraceRecord::SpanClose { id, .. } => match open.get_mut(id) {
                None => return Err(format!("record {i}: close of never-opened span {id}")),
                Some(closed @ false) => *closed = true,
                Some(true) => return Err(format!("record {i}: span {id} closed twice")),
            },
            TraceRecord::Event { .. } => {}
        }
    }
    let mut dangling: Vec<u64> = open
        .into_iter()
        .filter(|(_, closed)| !closed)
        .map(|(id, _)| id)
        .collect();
    dangling.sort_unstable();
    Ok(dangling)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_basics() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(
            parse_json("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::Str("a\n\"bA".into())
        );
        let v = parse_json(r#"{"a":[1,2,{"b":false}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        match v.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[2].get("b"), Some(&Json::Bool(false)));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert!(parse_json("{\"a\":1,}").is_err());
        assert!(parse_json("1 2").is_err(), "trailing bytes rejected");
        assert!(parse_json("\"unterminated").is_err());
    }

    fn header_line() -> String {
        format!(
            "{{\"magic\":\"{TRACE_MAGIC}\",\"format_version\":{TRACE_FORMAT_VERSION},\
             \"bin\":\"test\",\"start_unix_ms\":12}}\n"
        )
    }

    #[test]
    fn header_validation_is_typed() {
        assert!(read_trace("").is_err());
        assert!(
            read_trace("{\"magic\":\"portopt-tr").is_err(),
            "torn header"
        );
        let wrong_magic = "{\"magic\":\"other\",\"format_version\":1}\n";
        let e = read_trace(wrong_magic).unwrap_err();
        assert!(e.contains("not a portopt trace"), "{e}");
        let future = format!(
            "{{\"magic\":\"{TRACE_MAGIC}\",\"format_version\":99,\"bin\":\"x\",\"start_unix_ms\":0}}\n"
        );
        let e = read_trace(&future).unwrap_err();
        assert!(e.contains("version 99"), "{e}");
    }

    #[test]
    fn records_decode_and_torn_tail_is_flagged() {
        let mut text = header_line();
        text.push_str(
            "{\"t\":\"e\",\"us\":5,\"lvl\":\"info\",\"tgt\":\"x\",\"msg\":\"m\",\"f\":{\"n\":3}}\n",
        );
        text.push_str(
            "{\"t\":\"so\",\"us\":6,\"id\":1,\"parent\":0,\"tgt\":\"x\",\"name\":\"work\"}\n",
        );
        text.push_str("{\"t\":\"sc\",\"us\":9,\"id\":1,\"dur_us\":3}\n");
        text.push_str("{\"t\":\"e\",\"us\":10,\"lvl\":\"in"); // torn
        let tf = read_trace(&text).unwrap();
        assert!(tf.torn_tail);
        assert_eq!(tf.records.len(), 3);
        assert_eq!(tf.header.bin, "test");
        match &tf.records[0] {
            TraceRecord::Event { fields, .. } => {
                assert_eq!(fields[0].0, "n");
                assert_eq!(fields[0].1.as_u64(), Some(3));
            }
            other => panic!("expected event, got {other:?}"),
        }
        match &tf.records[1] {
            TraceRecord::SpanOpen {
                parent: None, name, ..
            } => assert_eq!(name, "work"),
            other => panic!("expected root span open, got {other:?}"),
        }
        assert_eq!(check_spans(&tf.records).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn corrupt_complete_line_is_a_hard_error() {
        let mut text = header_line();
        text.push_str("{ not json\n");
        let e = read_trace(&text).unwrap_err();
        assert!(e.contains("line 2"), "{e}");
    }

    #[test]
    fn span_check_catches_violations() {
        let open = |id| TraceRecord::SpanOpen {
            us: 0,
            id,
            parent: None,
            target: "t".into(),
            name: "n".into(),
            fields: vec![],
        };
        let close = |id| TraceRecord::SpanClose {
            us: 1,
            id,
            dur_us: 1,
            fields: vec![],
        };
        assert_eq!(check_spans(&[open(1), close(1)]).unwrap(), vec![]);
        assert_eq!(check_spans(&[open(1), open(2), close(2)]).unwrap(), vec![1]);
        assert!(check_spans(&[close(7)]).is_err());
        assert!(check_spans(&[open(1), close(1), close(1)]).is_err());
        assert!(check_spans(&[open(1), open(1)]).is_err());
    }
}
