//! Workspace-wide tracing: leveled structured events plus timed spans,
//! with a stderr sink for humans and an optional JSON-lines file sink
//! for the offline `trace` analysis bin.
//!
//! This crate is deliberately **dependency-free** (std only): it sits
//! below every other workspace crate — `portopt-exec` counts steals and
//! parks through it, `portopt-core` wraps every (program, setting)
//! pricing in a span, the bench bins route their progress chatter
//! through the leveled macros — so it must never pull another crate
//! (not even a shim) into the leaf position of the dependency graph.
//! It hand-rolls the small JSON subset it needs in [`write`]-side
//! emission and the [`read`] module's parser.
//!
//! ## Model
//!
//! Two primitives:
//!
//! - **Events** — one-shot leveled records with a formatted message and
//!   optional structured fields, emitted via the [`error!`], [`warn!`],
//!   [`info!`], [`debug!`] and [`trace!`] macros.
//! - **Spans** — timed regions with a process-unique id, an optional
//!   parent (same-thread nesting via a thread-local stack), a
//!   monotonic-clock duration, and open/close fields. [`span`] returns
//!   an RAII [`SpanGuard`] that closes on drop; [`Span::begin`] /
//!   [`Span::end`] is the detached form for lifecycles that cross
//!   threads (a coordinator lease is granted on one connection thread
//!   and expired on another).
//!
//! ## Sinks and filtering
//!
//! The **stderr sink** prints human one-liners and is filtered by the
//! global max level — set from `--log-level` (every bench bin) or the
//! `PORTOPT_LOG` environment variable, default `info`. Span closes
//! print to stderr at `debug`, span opens at `trace`.
//!
//! The **file sink** (`--trace-out PATH`) is an append-only JSON-lines
//! trace file that records *everything regardless of level* — a trace
//! file exists to answer "where did the time go", so it is never
//! level-thinned. Like the checkpoint journal it opens with a versioned
//! header line, and like every other published artifact in this
//! workspace it is written to a `PATH.tmp.<pid>` sibling and atomically
//! renamed into place by [`finish`]. A process that dies before
//! [`finish`] leaves only the tmp file — a trace is either complete or
//! visibly absent, never torn under its final name.
//!
//! When neither sink wants a record (level filtered out, no file sink)
//! an event costs two relaxed atomic loads and a span costs one
//! timestamp plus an id bump — cheap enough to leave enabled in
//! production builds, which `BENCH_sweep.json`'s `obs_trajectory`
//! gate holds to <5% on the fig1 smoke sweep.
//!
//! Timestamps in the trace file are microseconds since the first
//! [`init`] call (monotonic clock), so they order correctly across
//! threads but are **not** wall-clock times; the header carries
//! `start_unix_ms` for coarse correlation with the outside world.

#![warn(missing_docs)]

pub mod read;

use std::cell::RefCell;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The `magic` field of every trace-file header; anything else is not one.
pub const TRACE_MAGIC: &str = "portopt-trace";

/// Current trace-file format version. Bump on any change to the header
/// or record layout.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// Event severity, ordered: a max level of [`Level::Info`] admits
/// `Error`, `Warn` and `Info`. [`Level::Off`] is only meaningful as a
/// filter (`--log-level off`); nothing is ever *emitted* at `Off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Silence the stderr sink entirely (filter-only pseudo-level).
    Off = 0,
    /// The operation failed; output may be missing or degraded.
    Error = 1,
    /// Something unexpected that the code recovered from.
    Warn = 2,
    /// Progress milestones a human running the bin wants by default.
    Info = 3,
    /// Per-unit-of-work detail: span durations, cache hits, batch sizes.
    Debug = 4,
    /// Firehose: queue depth samples, span opens, per-chunk accounting.
    Trace = 5,
}

impl Level {
    /// Parses a level name (case-insensitive): `off`, `error`, `warn`,
    /// `info`, `debug`, `trace`.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    /// The canonical lowercase name (`Off` renders as `"off"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// A structured field value. Built via `From` impls so call sites can
/// write `("pairs", n.into())` — or, through the macros, `pairs = n`.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (also `usize`/`u32` via `From`).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Borrowed-then-owned string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

macro_rules! field_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> FieldValue {
                FieldValue::$variant(v as $conv)
            }
        }
    )*};
}
field_from!(u64 => U64 as u64, usize => U64 as u64, u32 => U64 as u64,
            u16 => U64 as u64, i64 => I64 as i64, i32 => I64 as i64,
            f64 => F64 as f64, f32 => F64 as f64);

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}
impl From<&String> for FieldValue {
    fn from(v: &String) -> FieldValue {
        FieldValue::Str(v.clone())
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Global tracer state.
// ---------------------------------------------------------------------------

/// Max level admitted to the stderr sink (`Level as u8`; default Info).
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
/// Fast mirror of "is a file sink installed", so the macros' guard is a
/// relaxed load instead of a mutex acquire.
static SINK_ON: AtomicBool = AtomicBool::new(false);
/// Process-unique span ids; 0 is reserved for "no span / no parent".
static SPAN_SEQ: AtomicU64 = AtomicU64::new(1);
static SINK: Mutex<Option<FileSink>> = Mutex::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// Open RAII spans on this thread, innermost last — the parent
    /// chain for new spans.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn elapsed_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Initializes the global tracer: sets the stderr max level and, if
/// `trace_out` is given, opens the JSON-lines file sink (writing its
/// header line immediately). Call [`finish`] before a clean exit to
/// publish the trace file under its final name.
///
/// Safe to call more than once: the level is updated each time, the
/// monotonic epoch is pinned by the first call, and a second file sink
/// replaces the first (which is abandoned as its tmp file).
pub fn init(level: Level, trace_out: Option<&Path>) -> std::io::Result<()> {
    epoch(); // pin the epoch before any record can need it
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
    if let Some(path) = trace_out {
        let sink = FileSink::create(path)?;
        *SINK.lock().expect("trace sink lock") = Some(sink);
        SINK_ON.store(true, Ordering::Release);
    }
    Ok(())
}

/// Resolves the effective level: an explicit `--log-level` value wins,
/// else the `PORTOPT_LOG` environment variable, else [`Level::Info`].
/// Unparseable values fall through to the next source.
pub fn level_from_env_or(flag: Option<&str>) -> Level {
    if let Some(l) = flag.and_then(Level::parse) {
        return l;
    }
    if let Ok(env) = std::env::var("PORTOPT_LOG") {
        if let Some(l) = Level::parse(&env) {
            return l;
        }
    }
    Level::Info
}

/// The current stderr max level.
pub fn max_level() -> Level {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        4 => Level::Debug,
        5 => Level::Trace,
        _ => Level::Off,
    }
}

/// Whether an event at `level` would reach the stderr sink.
pub fn stderr_wants(level: Level) -> bool {
    level != Level::Off && (level as u8) <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Whether a file sink is installed (which records all levels).
pub fn sink_on() -> bool {
    SINK_ON.load(Ordering::Relaxed)
}

/// Macro guard: would an event at `level` reach *any* sink? When this
/// is false the macros skip argument formatting entirely, so a filtered
/// event costs two relaxed atomic loads.
pub fn wanted(level: Level) -> bool {
    stderr_wants(level) || sink_on()
}

/// Flushes and atomically publishes the trace file (tmp → final
/// rename), returning the final path if a sink was open. Idempotent;
/// call at the end of `main` — a process killed before this leaves only
/// the `.tmp.<pid>` sibling, never a torn file under the final name.
pub fn finish() -> std::io::Result<Option<PathBuf>> {
    let sink = SINK.lock().expect("trace sink lock").take();
    SINK_ON.store(false, Ordering::Release);
    match sink {
        Some(s) => s.publish().map(Some),
        None => Ok(None),
    }
}

// ---------------------------------------------------------------------------
// Emission.
// ---------------------------------------------------------------------------

/// Emits one event to every sink that wants it. Call through the level
/// macros, which guard with [`wanted`] first; calling this directly
/// bypasses no correctness, only the cheap skip.
pub fn emit_event(
    level: Level,
    target: &str,
    args: fmt::Arguments<'_>,
    fields: &[(&str, FieldValue)],
) {
    let us = elapsed_us();
    if stderr_wants(level) {
        let mut line = format!(
            "[{:>10.3}s {:<5} {}] {}",
            us as f64 / 1e6,
            level.as_str(),
            target,
            args
        );
        for (k, v) in fields {
            use fmt::Write as _;
            let _ = write!(line, " {k}={v}");
        }
        eprintln!("{line}");
    }
    if sink_on() {
        let mut rec = String::with_capacity(96);
        rec.push_str("{\"t\":\"e\",\"us\":");
        push_u64(&mut rec, us);
        rec.push_str(",\"lvl\":\"");
        rec.push_str(level.as_str());
        rec.push_str("\",\"tgt\":");
        push_json_str(&mut rec, target);
        rec.push_str(",\"msg\":");
        push_json_str(&mut rec, &args.to_string());
        push_fields(&mut rec, fields);
        rec.push('}');
        sink_write(&rec);
    }
}

/// A timed region. Detached form: [`Span::begin`] on one thread,
/// [`Span::end`]/[`Span::end_with`] wherever the lifecycle finishes —
/// nothing thread-local is held, so the span can be stored in shared
/// state (e.g. a coordinator lease table). Dropping a `Span` without
/// ending it closes it implicitly with no extra fields.
#[derive(Debug)]
pub struct Span {
    id: u64,
    target: &'static str,
    name: &'static str,
    start: Instant,
    closed: bool,
}

impl Span {
    /// Opens a detached span. The parent is taken from the calling
    /// thread's RAII stack (none if empty).
    pub fn begin(target: &'static str, name: &'static str, fields: &[(&str, FieldValue)]) -> Span {
        let id = SPAN_SEQ.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| s.borrow().last().copied()).unwrap_or(0);
        let us = elapsed_us();
        if sink_on() {
            let mut rec = String::with_capacity(96);
            rec.push_str("{\"t\":\"so\",\"us\":");
            push_u64(&mut rec, us);
            rec.push_str(",\"id\":");
            push_u64(&mut rec, id);
            rec.push_str(",\"parent\":");
            push_u64(&mut rec, parent);
            rec.push_str(",\"tgt\":");
            push_json_str(&mut rec, target);
            rec.push_str(",\"name\":");
            push_json_str(&mut rec, name);
            push_fields(&mut rec, fields);
            rec.push('}');
            sink_write(&rec);
        }
        if stderr_wants(Level::Trace) {
            emit_event(
                Level::Trace,
                target,
                format_args!("{name} begin"),
                &[("span", FieldValue::U64(id))],
            );
        }
        Span {
            id,
            target,
            name,
            start: Instant::now(),
            closed: false,
        }
    }

    /// This span's process-unique id (matches the trace-file records).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Microseconds since the span opened.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Closes the span.
    pub fn end(mut self) {
        self.close(&[]);
    }

    /// Closes the span with result fields (e.g. `hit = true`).
    pub fn end_with(mut self, fields: &[(&str, FieldValue)]) {
        self.close(fields);
    }

    fn close(&mut self, fields: &[(&str, FieldValue)]) {
        if self.closed {
            return;
        }
        self.closed = true;
        let dur_us = self.start.elapsed().as_micros() as u64;
        if sink_on() {
            let mut rec = String::with_capacity(64);
            rec.push_str("{\"t\":\"sc\",\"us\":");
            push_u64(&mut rec, elapsed_us());
            rec.push_str(",\"id\":");
            push_u64(&mut rec, self.id);
            rec.push_str(",\"dur_us\":");
            push_u64(&mut rec, dur_us);
            push_fields(&mut rec, fields);
            rec.push('}');
            sink_write(&rec);
        }
        if stderr_wants(Level::Debug) {
            let mut extra = String::new();
            for (k, v) in fields {
                use fmt::Write as _;
                let _ = write!(extra, " {k}={v}");
            }
            emit_event(
                Level::Debug,
                self.target,
                format_args!("{} done in {}us{}", self.name, dur_us, extra),
                &[],
            );
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close(&[]);
    }
}

/// RAII wrapper around a [`Span`] that also maintains the thread-local
/// parent stack: spans opened on this thread while the guard lives
/// become its children. Closes on drop (including unwind).
#[derive(Debug)]
pub struct SpanGuard {
    span: Option<Span>,
}

/// Opens an RAII span: pushed onto this thread's parent stack, closed
/// (and popped) when the returned guard drops.
pub fn span(target: &'static str, name: &'static str, fields: &[(&str, FieldValue)]) -> SpanGuard {
    let sp = Span::begin(target, name, fields);
    SPAN_STACK.with(|s| s.borrow_mut().push(sp.id));
    SpanGuard { span: Some(sp) }
}

impl SpanGuard {
    /// The wrapped span's id.
    pub fn id(&self) -> u64 {
        self.span.as_ref().map_or(0, Span::id)
    }

    /// Microseconds since the span opened.
    pub fn elapsed_us(&self) -> u64 {
        self.span.as_ref().map_or(0, Span::elapsed_us)
    }

    /// Closes the span now, attaching result fields.
    pub fn close_with(mut self, fields: &[(&str, FieldValue)]) {
        if let Some(mut sp) = self.span.take() {
            pop_stack(sp.id);
            sp.close(fields);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(mut sp) = self.span.take() {
            pop_stack(sp.id);
            sp.close(&[]);
        }
    }
}

fn pop_stack(id: u64) {
    SPAN_STACK.with(|s| {
        let mut st = s.borrow_mut();
        // Guards drop LIFO in well-nested code; `retain` covers the
        // pathological out-of-order drop without corrupting the stack.
        if st.last() == Some(&id) {
            st.pop();
        } else {
            st.retain(|&x| x != id);
        }
    });
}

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------

/// Emits a leveled event. Prefer the per-level shorthands
/// ([`error!`](crate::error), [`warn!`](crate::warn), …); the forms are
/// `event!(level, target, "fmt", args…)` and
/// `event!(level, target, { key = value, … }, "fmt", args…)`.
#[macro_export]
macro_rules! event {
    ($lvl:expr, $tgt:expr, { $($k:ident = $v:expr),* $(,)? }, $($arg:tt)+) => {{
        if $crate::wanted($lvl) {
            $crate::emit_event(
                $lvl,
                $tgt,
                ::core::format_args!($($arg)+),
                &[$((::core::stringify!($k), $crate::FieldValue::from($v))),*],
            );
        }
    }};
    ($lvl:expr, $tgt:expr, $($arg:tt)+) => {
        $crate::event!($lvl, $tgt, {}, $($arg)+)
    };
}

/// `error!(target, {fields…}?, "fmt", …)` — the operation failed.
#[macro_export]
macro_rules! error {
    ($tgt:expr, $($rest:tt)+) => { $crate::event!($crate::Level::Error, $tgt, $($rest)+) };
}
/// `warn!(target, {fields…}?, "fmt", …)` — recovered but unexpected.
#[macro_export]
macro_rules! warn {
    ($tgt:expr, $($rest:tt)+) => { $crate::event!($crate::Level::Warn, $tgt, $($rest)+) };
}
/// `info!(target, {fields…}?, "fmt", …)` — default-visible progress.
#[macro_export]
macro_rules! info {
    ($tgt:expr, $($rest:tt)+) => { $crate::event!($crate::Level::Info, $tgt, $($rest)+) };
}
/// `debug!(target, {fields…}?, "fmt", …)` — per-unit-of-work detail.
#[macro_export]
macro_rules! debug {
    ($tgt:expr, $($rest:tt)+) => { $crate::event!($crate::Level::Debug, $tgt, $($rest)+) };
}
/// `trace!(target, {fields…}?, "fmt", …)` — firehose detail.
#[macro_export]
macro_rules! trace {
    ($tgt:expr, $($rest:tt)+) => { $crate::event!($crate::Level::Trace, $tgt, $($rest)+) };
}

// ---------------------------------------------------------------------------
// File sink.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct FileSink {
    w: std::io::BufWriter<std::fs::File>,
    tmp: PathBuf,
    final_path: PathBuf,
}

impl FileSink {
    fn create(path: &Path) -> std::io::Result<FileSink> {
        let final_path = path.to_path_buf();
        let mut name = final_path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "trace".to_string());
        name.push_str(&format!(".tmp.{}", std::process::id()));
        let tmp = final_path.with_file_name(name);
        let file = std::fs::File::create(&tmp)?;
        let mut sink = FileSink {
            w: std::io::BufWriter::new(file),
            tmp,
            final_path,
        };
        let start_unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let bin = std::env::args()
            .next()
            .map(|a| {
                Path::new(&a)
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or(a)
            })
            .unwrap_or_else(|| "unknown".to_string());
        let mut header = String::with_capacity(96);
        header.push_str("{\"magic\":\"");
        header.push_str(TRACE_MAGIC);
        header.push_str("\",\"format_version\":");
        push_u64(&mut header, TRACE_FORMAT_VERSION as u64);
        header.push_str(",\"bin\":");
        push_json_str(&mut header, &bin);
        header.push_str(",\"start_unix_ms\":");
        push_u64(&mut header, start_unix_ms);
        header.push('}');
        sink.line(&header)?;
        sink.w.flush()?;
        Ok(sink)
    }

    fn line(&mut self, rec: &str) -> std::io::Result<()> {
        self.w.write_all(rec.as_bytes())?;
        self.w.write_all(b"\n")
    }

    fn publish(mut self) -> std::io::Result<PathBuf> {
        self.w.flush()?;
        self.w.get_ref().sync_all()?;
        drop(self.w);
        std::fs::rename(&self.tmp, &self.final_path)?;
        Ok(self.final_path)
    }
}

fn sink_write(rec: &str) {
    let mut guard = SINK.lock().expect("trace sink lock");
    if let Some(sink) = guard.as_mut() {
        if sink.line(rec).is_err() {
            // A sink that cannot append degrades observability, never
            // the traced computation: drop it and keep running.
            *guard = None;
            SINK_ON.store(false, Ordering::Release);
            drop(guard);
            eprintln!("trace sink write failed; tracing to file disabled");
        }
    }
}

// ---------------------------------------------------------------------------
// Hand-rolled JSON emission.
// ---------------------------------------------------------------------------

fn push_u64(out: &mut String, v: u64) {
    use fmt::Write as _;
    let _ = write!(out, "{v}");
}

/// Appends `s` as a JSON string literal (quoted, escaped).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_field_value(out: &mut String, v: &FieldValue) {
    use fmt::Write as _;
    match v {
        FieldValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::F64(n) => {
            // JSON has no Infinity/NaN; null round-trips like the
            // checkpoint journal's cycle rows.
            if n.is_finite() {
                let _ = write!(out, "{n}");
            } else {
                out.push_str("null");
            }
        }
        FieldValue::Str(s) => push_json_str(out, s),
        FieldValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

/// Appends `,"f":{…}` if there are any fields.
fn push_fields(out: &mut String, fields: &[(&str, FieldValue)]) {
    if fields.is_empty() {
        return;
    }
    out.push_str(",\"f\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        push_field_value(out, v);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::{read_trace, TraceRecord};

    #[test]
    fn level_parse_and_order() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("bogus"), None);
        assert!(Level::Error < Level::Trace);
        for l in [
            Level::Off,
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
    }

    #[test]
    fn level_resolution_precedence() {
        // Explicit flag wins over anything.
        assert_eq!(level_from_env_or(Some("debug")), Level::Debug);
        // Unparseable flag falls through to the default (the test
        // process has no meaningful PORTOPT_LOG).
        std::env::remove_var("PORTOPT_LOG");
        assert_eq!(level_from_env_or(Some("nonsense")), Level::Info);
        assert_eq!(level_from_env_or(None), Level::Info);
    }

    #[test]
    fn json_string_escaping() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn fields_render_as_json_object() {
        let mut s = String::new();
        push_fields(
            &mut s,
            &[
                ("n", FieldValue::U64(7)),
                ("ratio", FieldValue::F64(0.5)),
                ("inf", FieldValue::F64(f64::INFINITY)),
                ("who", FieldValue::Str("rig-1".into())),
                ("ok", FieldValue::Bool(true)),
            ],
        );
        assert_eq!(
            s,
            ",\"f\":{\"n\":7,\"ratio\":0.5,\"inf\":null,\"who\":\"rig-1\",\"ok\":true}"
        );
        let mut empty = String::new();
        push_fields(&mut empty, &[]);
        assert_eq!(empty, "");
    }

    #[test]
    fn field_value_from_impls() {
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-2i64), FieldValue::I64(-2));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from(1.5f64), FieldValue::F64(1.5));
    }

    /// End-to-end through the real global sink: init → events + spans →
    /// finish → parse back with the `read` module. This is the one test
    /// that touches the global sink (tests share a process).
    #[test]
    fn global_sink_round_trip() {
        let dir = std::env::temp_dir().join(format!("portopt-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.trace");

        init(Level::Info, Some(&path)).unwrap();
        assert!(sink_on());
        // Final name must not exist until finish(): atomic publication.
        assert!(!path.exists());

        info!("test", { pairs = 3usize }, "hello {}", "world");
        debug!("test", "below the stderr filter but still sinked");
        {
            let g = span("test", "outer", &[("p", 1usize.into())]);
            assert!(g.id() > 0);
            let inner = span("test", "inner", &[]);
            inner.close_with(&[("hit", true.into())]);
        }
        let detached = Span::begin("test", "lease", &[("shard", 2usize.into())]);
        std::thread::spawn(move || detached.end()).join().unwrap();

        let published = finish().unwrap().expect("sink was open");
        assert_eq!(published, path);
        assert!(!sink_on());
        assert!(finish().unwrap().is_none(), "finish is idempotent");

        let text = std::fs::read_to_string(&path).unwrap();
        let tf = read_trace(&text).unwrap();
        assert_eq!(tf.header.format_version, TRACE_FORMAT_VERSION);

        let mut events = 0;
        let mut opens = std::collections::HashMap::new();
        let mut closes = 0;
        let mut inner_parent = None;
        for r in &tf.records {
            match r {
                TraceRecord::Event { msg, .. } => {
                    events += 1;
                    if msg.contains("hello") {
                        assert!(msg.contains("world"));
                    }
                }
                TraceRecord::SpanOpen {
                    id, parent, name, ..
                } => {
                    opens.insert(*id, name.clone());
                    if name == "inner" {
                        inner_parent = Some(*parent);
                    }
                }
                TraceRecord::SpanClose { id, .. } => {
                    closes += 1;
                    assert!(opens.contains_key(id), "close matches an open");
                }
            }
        }
        assert!(events >= 2, "info and debug events both sinked");
        assert_eq!(opens.len(), 3);
        assert_eq!(closes, 3);
        // The RAII stack parented inner under outer.
        let outer_id = opens
            .iter()
            .find(|(_, n)| n.as_str() == "outer")
            .map(|(id, _)| *id)
            .unwrap();
        assert_eq!(inner_parent, Some(Some(outer_id)));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn span_ids_are_unique_across_threads() {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..100)
                        .map(|_| Span::begin("t", "s", &[]).id())
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 400);
    }
}
