//! Consumer benchmarks: `cjpeg`, `djpeg`, `lame`, `madplay`, `tiff2bw`,
//! `tiff2rgba`, `tiffdither`, `tiffmedian`, `gs`.

use crate::kernels::*;
use portopt_ir::{FuncBuilder, Module, ModuleBuilder, Pred};

/// 8×8 block transform kernel shared by `cjpeg`/`djpeg` (forward/inverse
/// DCT-ish): multiply-accumulate over known-trip-count loops.
fn jpeg_kernel(name: &str, seed: u64, inverse: bool) -> Module {
    let mut mb = ModuleBuilder::new(name);
    let nblocks: i64 = 40;
    let img = rand_global(&mut mb, "img", (nblocks * 64) as u32, seed, 0, 256);
    let cos_tab: Vec<i64> = (0..64)
        .map(|k| {
            let (i, j) = (k / 8, k % 8);
            let v = ((2 * j + 1) as f64 * i as f64 * std::f64::consts::PI / 16.0).cos();
            (v * 256.0) as i64
        })
        .collect();
    let (_, cos_base) = mb.global_init("costab", 64, cos_tab);
    let (_, tmp_base) = mb.global("tmp", 64);

    let mut b = FuncBuilder::new("main", 0);
    let pi = b.iconst(img as i64);
    let pc = b.iconst(cos_base as i64);
    let pt = b.iconst(tmp_base as i64);
    let acc = b.iconst(0);
    b.counted_loop(0, nblocks, 1, |b, blk| {
        let base = b.shl(blk, 6);
        // Row pass: out[i][j] = sum_k in[i][k] * cos[j][k] >> 8.
        b.counted_loop(0, 8, 1, |b, i| {
            let irow = b.shl(i, 3);
            b.counted_loop(0, 8, 1, |b, j| {
                let jrow = b.shl(j, 3);
                let sum = b.fresh();
                b.assign(sum, 0);
                b.counted_loop(0, 8, 1, |b, k| {
                    let iidx0 = b.add(base, irow);
                    let iidx = b.add(iidx0, k);
                    let v = load_idx(b, pi, iidx);
                    let cidx = b.add(jrow, k);
                    let c = load_idx(b, pc, cidx);
                    let p = b.mul(v, c);
                    let sc = if inverse { b.sar(p, 9) } else { b.sar(p, 8) };
                    let t = b.add(sum, sc);
                    b.assign(sum, t);
                });
                let oidx = b.add(irow, j);
                store_idx(b, pt, oidx, sum);
            });
        });
        // Column pass back into the image + quantise.
        b.counted_loop(0, 64, 1, |b, k| {
            let v = load_idx(b, pt, k);
            let q = b.sar(v, 2);
            let idx = b.add(base, k);
            store_idx(b, pi, idx, q);
            emit_hash_step(b, acc, q);
        });
    });
    b.ret(acc);
    finish_main(mb, b)
}

/// `cjpeg` — JPEG compression stand-in (forward transform).
pub fn cjpeg(seed: u64) -> Module {
    jpeg_kernel("cjpeg", seed, false)
}

/// `djpeg` — JPEG decompression stand-in (inverse transform).
pub fn djpeg(seed: u64) -> Module {
    jpeg_kernel("djpeg", seed ^ 0xD1, true)
}

/// `lame` — MP3 encoder stand-in: windowed subband analysis with a
/// log-quantiser (mul + branch mix).
pub fn lame(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("lame");
    let n: i64 = 6 * 576;
    let pcm = rand_global(&mut mb, "pcm", n as u32, seed, -30000, 30000);
    let win: Vec<i64> = (0..32).map(|i| 100 + 20 * i).collect();
    let (_, win_base) = mb.global_init("window", 32, win);

    let mut b = FuncBuilder::new("main", 0);
    let pp = b.iconst(pcm as i64);
    let pw = b.iconst(win_base as i64);
    let acc = b.iconst(0);
    b.counted_loop(0, n / 576, 1, |b, g| {
        let gbase = b.mul(g, 576);
        b.counted_loop(0, 576 - 32, 8, |b, s| {
            let sum = b.fresh();
            b.assign(sum, 0);
            b.counted_loop(0, 32, 1, |b, k| {
                let idx0 = b.add(gbase, s);
                let idx = b.add(idx0, k);
                let v = load_idx(b, pp, idx);
                let w = load_idx(b, pw, k);
                let p = b.mul(v, w);
                let sc = b.sar(p, 8);
                let t = b.add(sum, sc);
                b.assign(sum, t);
            });
            // log2-ish quantise by shift ladder.
            let mag = emit_abs(b, sum);
            let q = b.fresh();
            b.assign(q, 0);
            let t = b.fresh();
            b.assign(t, mag);
            b.while_loop(
                |b| b.cmp(Pred::Gt, t, 0),
                |b| {
                    let s2 = b.shr(t, 1);
                    b.assign(t, s2);
                    let q2 = b.add(q, 1);
                    b.assign(q, q2);
                },
            );
            emit_hash_step(b, acc, q);
        });
    });
    b.ret(acc);
    finish_main(mb, b)
}

/// `madplay` — MP3 decoder stand-in: polyphase synthesis dot products with
/// saturation (MAC-heavy, known trip counts).
pub fn madplay(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("madplay");
    let frames: i64 = 45;
    let sub: i64 = 32;
    let n = frames * sub;
    let bands = rand_global(&mut mb, "bands", n as u32, seed, -(1 << 20), 1 << 20);
    let dwin: Vec<i64> = (0..512).map(|i| ((i * 37) % 255) - 127).collect();
    let (_, dwin_base) = mb.global_init("dwindow", 512, dwin);

    let mut b = FuncBuilder::new("main", 0);
    let pb = b.iconst(bands as i64);
    let pd = b.iconst(dwin_base as i64);
    let acc = b.iconst(0);
    b.counted_loop(0, frames, 1, |b, f| {
        let fbase = b.mul(f, sub);
        b.counted_loop(0, sub, 1, |b, s| {
            let sum = b.fresh();
            b.assign(sum, 0);
            // 16-tap dot product against the D window.
            b.counted_loop(0, 16, 1, |b, t| {
                let widx0 = b.shl(t, 5);
                let widx = b.add(widx0, s);
                let w = load_idx(b, pd, widx);
                let bidx0 = b.add(fbase, t);
                let bidx = b.rem(bidx0, n);
                let v = load_idx(b, pb, bidx);
                let p = b.mul(v, w);
                let sc = b.sar(p, 12);
                let t2 = b.add(sum, sc);
                b.assign(sum, t2);
            });
            // Saturate to 16 bits.
            let hi = b.cmp(Pred::Gt, sum, 32767);
            b.if_then(hi, |b| b.assign(sum, 32767));
            let lo = b.cmp(Pred::Lt, sum, -32768);
            b.if_then(lo, |b| b.assign(sum, -32768));
            emit_hash_step(b, acc, sum);
        });
    });
    b.ret(acc);
    finish_main(mb, b)
}

/// `tiff2bw` — RGB to luminance: pure streaming MAC kernel.
pub fn tiff2bw(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("tiff2bw");
    let pixels: i64 = 7000;
    let rgb = rand_global(&mut mb, "rgb", (pixels * 3) as u32, seed, 0, 256);
    let (_, out_base) = mb.global("bw", pixels as u32);

    let mut b = FuncBuilder::new("main", 0);
    let pr = b.iconst(rgb as i64);
    let po = b.iconst(out_base as i64);
    let acc = b.iconst(0);
    b.counted_loop(0, pixels, 1, |b, i| {
        let base = b.mul(i, 3);
        let r = load_idx(b, pr, base);
        let g_i = b.add(base, 1);
        let g = load_idx(b, pr, g_i);
        let b_i = b.add(base, 2);
        let bl = load_idx(b, pr, b_i);
        let wr = b.mul(r, 77);
        let wg = b.mul(g, 151);
        let wb = b.mul(bl, 28);
        let s0 = b.add(wr, wg);
        let s1 = b.add(s0, wb);
        let y = b.shr(s1, 8);
        store_idx(b, po, i, y);
        let t = b.add(acc, y);
        b.assign(acc, t);
    });
    b.ret(acc);
    finish_main(mb, b)
}

/// `tiff2rgba` — palette expansion: table lookups + streaming stores.
pub fn tiff2rgba(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("tiff2rgba");
    let pixels: i64 = 6000;
    let src = rand_global(&mut mb, "indexed", pixels as u32, seed, 0, 256);
    let pal = rand_global(&mut mb, "palette", 256, seed ^ 0x9A, 0, 1 << 24);
    let (_, out_base) = mb.global("rgba", pixels as u32);

    let mut b = FuncBuilder::new("main", 0);
    let ps = b.iconst(src as i64);
    let pp = b.iconst(pal as i64);
    let po = b.iconst(out_base as i64);
    let acc = b.iconst(0);
    b.counted_loop(0, pixels, 1, |b, i| {
        let idx = load_idx(b, ps, i);
        let colour = load_idx(b, pp, idx);
        let alpha = b.or(colour, 0xFF00_0000u32 as i64);
        store_idx(b, po, i, alpha);
        emit_hash_step(b, acc, alpha);
    });
    b.ret(acc);
    finish_main(mb, b)
}

/// `tiffdither` — Floyd–Steinberg error diffusion: loop-carried error
/// terms create a tight dependence chain the scheduler cannot break.
pub fn tiffdither(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("tiffdither");
    let (w, h): (i64, i64) = (96, 64);
    let img = rand_global(&mut mb, "gray", (w * h) as u32, seed, 0, 256);

    let mut b = FuncBuilder::new("main", 0);
    let pi = b.iconst(img as i64);
    let acc = b.iconst(0);
    b.counted_loop(0, h - 1, 1, |b, y| {
        let row = b.mul(y, w);
        b.counted_loop(0, w - 1, 1, |b, x| {
            let idx = b.add(row, x);
            let old = load_idx(b, pi, idx);
            let is_white = b.cmp(Pred::Gt, old, 127);
            let newv = b.fresh();
            b.if_else(is_white, |b| b.assign(newv, 255), |b| b.assign(newv, 0));
            let err = b.sub(old, newv);
            store_idx(b, pi, idx, newv);
            // Diffuse 7/16 right, 5/16 below.
            let right_i = b.add(idx, 1);
            let rv = load_idx(b, pi, right_i);
            let e7 = b.mul(err, 7);
            let e7s = b.sar(e7, 4);
            let nr = b.add(rv, e7s);
            store_idx(b, pi, right_i, nr);
            let down_i = b.add(idx, w);
            let dv = load_idx(b, pi, down_i);
            let e5 = b.mul(err, 5);
            let e5s = b.sar(e5, 4);
            let nd = b.add(dv, e5s);
            store_idx(b, pi, down_i, nd);
            let t = b.add(acc, newv);
            b.assign(acc, t);
        });
    });
    b.ret(acc);
    finish_main(mb, b)
}

/// `tiffmedian` — 3×3 median filter via a compare/swap network (branch
/// ladder dominated).
pub fn tiffmedian(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("tiffmedian");
    let (w, h): (i64, i64) = (48, 36);
    let img = rand_global(&mut mb, "img", (w * h) as u32, seed, 0, 256);
    let (_, out_base) = mb.global("out", (w * h) as u32);
    let (_, win_base) = mb.global("window9", 9);

    let mut b = FuncBuilder::new("main", 0);
    let pi = b.iconst(img as i64);
    let po = b.iconst(out_base as i64);
    let pw = b.iconst(win_base as i64);
    let acc = b.iconst(0);
    b.counted_loop(1, h - 1, 1, |b, y| {
        b.counted_loop(1, w - 1, 1, |b, x| {
            let row = b.mul(y, w);
            // Gather the 3x3 window.
            let mut k = 0i64;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let r = b.add(row, dy * w);
                    let c0 = b.add(r, x);
                    let c = b.add(c0, dx);
                    let v = load_idx(b, pi, c);
                    store_idx(b, pw, k, v);
                    k += 1;
                }
            }
            // Partial selection sort for the median (5 passes).
            b.counted_loop(0, 5, 1, |b, pass| {
                let best = b.fresh();
                b.assign(best, pass);
                let j = b.fresh();
                let p1 = b.add(pass, 1);
                b.assign(j, p1);
                b.while_loop(
                    |b| b.cmp(Pred::Lt, j, 9),
                    |b| {
                        let vj = load_idx(b, pw, j);
                        let vb = load_idx(b, pw, best);
                        let less = b.cmp(Pred::Lt, vj, vb);
                        b.if_then(less, |b| b.assign(best, j));
                        let j1 = b.add(j, 1);
                        b.assign(j, j1);
                    },
                );
                let vb = load_idx(b, pw, best);
                let vp = load_idx(b, pw, pass);
                store_idx(b, pw, pass, vb);
                store_idx(b, pw, best, vp);
            });
            let med = load_idx(b, pw, 4);
            let oidx0 = b.add(row, x);
            store_idx(b, po, oidx0, med);
            let t = b.add(acc, med);
            b.assign(acc, t);
        });
    });
    b.ret(acc);
    finish_main(mb, b)
}

/// `gs` — ghostscript stand-in: a bytecode interpreter dispatch loop
/// (indirect-ish control flow through compare ladders; `thread-jumps`
/// and `reorder-blocks` territory).
pub fn gs(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("gs");
    let n: i64 = 6000;
    let prog = rand_global(&mut mb, "prog", n as u32, seed, 0, 8);
    let (_, stack_base) = mb.global("stk", 64);

    let mut b = FuncBuilder::new("main", 0);
    let pp = b.iconst(prog as i64);
    let ps = b.iconst(stack_base as i64);
    let sp = b.fresh();
    b.assign(sp, 0);
    let acc = b.iconst(0);
    store_idx(&mut b, ps, 0i64, 1i64);
    b.counted_loop(0, n, 1, |b, pc| {
        let op = load_idx(b, pp, pc);
        let spmask = b.and(sp, 62); // keep in range, leave slot for +1
                                    // Opcode dispatch ladder.
        let is_push = b.cmp(Pred::Eq, op, 0);
        b.if_else(
            is_push,
            |b| {
                let s1 = b.add(spmask, 1);
                store_idx(b, ps, s1, pc);
                b.assign(sp, s1);
            },
            |b| {
                let is_add = b.cmp(Pred::Eq, op, 1);
                b.if_else(
                    is_add,
                    |b| {
                        let v = load_idx(b, ps, spmask);
                        let v2 = b.add(v, 7);
                        store_idx(b, ps, spmask, v2);
                    },
                    |b| {
                        let is_mul = b.cmp(Pred::Eq, op, 2);
                        b.if_else(
                            is_mul,
                            |b| {
                                let v = load_idx(b, ps, spmask);
                                let v2 = b.mul(v, 3);
                                let v3 = b.and(v2, 0xFFFF);
                                store_idx(b, ps, spmask, v3);
                            },
                            |b| {
                                let is_pop = b.cmp(Pred::Eq, op, 3);
                                b.if_else(
                                    is_pop,
                                    |b| {
                                        let v = load_idx(b, ps, spmask);
                                        let t = b.add(acc, v);
                                        b.assign(acc, t);
                                        let s1 = b.sub(sp, 1);
                                        let pos = b.cmp(Pred::Ge, s1, 0);
                                        b.if_then(pos, |b| b.assign(sp, s1));
                                    },
                                    |b| {
                                        // ops 4..8: xor-rotate the acc.
                                        let x = b.xor(acc, op);
                                        let r = b.shl(x, 1);
                                        let m = b.and(r, 0xFFFF_FFFF);
                                        b.assign(acc, m);
                                    },
                                );
                            },
                        );
                    },
                );
            },
        );
    });
    b.ret(acc);
    finish_main(mb, b)
}
