//! Network benchmarks: `dijkstra`, `patricia`.

use crate::kernels::*;
use portopt_ir::{FuncBuilder, Module, ModuleBuilder, Pred};

/// `dijkstra` — single-source shortest paths on an adjacency matrix with
/// linear min-scans: large-array streaming with data-dependent updates.
pub fn dijkstra(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("dijkstra");
    let n: i64 = 72;
    let adj = rand_global(&mut mb, "adj", (n * n) as u32, seed, 1, 64);
    let (_, dist_base) = mb.global("dist", n as u32);
    let (_, vis_base) = mb.global("visited", n as u32);

    let mut b = FuncBuilder::new("main", 0);
    let pa = b.iconst(adj as i64);
    let pd = b.iconst(dist_base as i64);
    let pv = b.iconst(vis_base as i64);
    const INF: i64 = 1 << 30;
    b.counted_loop(0, n, 1, |b, i| {
        store_idx(b, pd, i, INF);
        store_idx(b, pv, i, 0i64);
    });
    store_idx(&mut b, pd, 0i64, 0i64);

    b.counted_loop(0, n, 1, |b, _round| {
        // Find the unvisited node with the smallest distance.
        let best = b.fresh();
        b.assign(best, -1);
        let bestd = b.fresh();
        b.assign(bestd, INF + 1);
        b.counted_loop(0, n, 1, |b, v| {
            let seen = load_idx(b, pv, v);
            let fresh = b.cmp(Pred::Eq, seen, 0);
            b.if_then(fresh, |b| {
                let d = load_idx(b, pd, v);
                let closer = b.cmp(Pred::Lt, d, bestd);
                b.if_then(closer, |b| {
                    b.assign(bestd, d);
                    b.assign(best, v);
                });
            });
        });
        let found = b.cmp(Pred::Ge, best, 0);
        b.if_then(found, |b| {
            store_idx(b, pv, best, 1i64);
            // Relax all edges out of `best`.
            let row = b.mul(best, n);
            b.counted_loop(0, n, 1, |b, v| {
                let eidx = b.add(row, v);
                let w = load_idx(b, pa, eidx);
                let nd = b.add(bestd, w);
                let dv = load_idx(b, pd, v);
                let shorter = b.cmp(Pred::Lt, nd, dv);
                b.if_then(shorter, |b| {
                    store_idx(b, pd, v, nd);
                });
            });
        });
    });

    let acc = b.iconst(0);
    b.counted_loop(0, n, 1, |b, i| {
        let d = load_idx(b, pd, i);
        emit_hash_step(b, acc, d);
    });
    b.ret(acc);
    finish_main(mb, b)
}

/// `patricia` — PATRICIA-trie routing-table lookups: bit tests plus
/// index-array pointer chasing with unpredictable branches.
pub fn patricia(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("patricia");
    let n_keys: i64 = 600;
    let n_nodes: i64 = 2 * n_keys + 2;
    let keys = rand_global(&mut mb, "keys", n_keys as u32, seed, 0, 1 << 24);
    let queries = rand_global(&mut mb, "queries", n_keys as u32, seed ^ 0x77, 0, 1 << 24);
    // Node arrays: bit index, left child, right child, stored key.
    let (_, bit_base) = mb.global("nbit", n_nodes as u32);
    let (_, left_base) = mb.global("nleft", n_nodes as u32);
    let (_, right_base) = mb.global("nright", n_nodes as u32);
    let (_, key_base) = mb.global("nkey", n_nodes as u32);
    let (_, count_cell) = mb.global("ncount", 1);

    // insert(key): walks bits from the top, appends a node at the first
    // free slot (simplified binary digital trie, bounded depth 24).
    let insert = {
        let mut b = FuncBuilder::new("insert", 1);
        let key = b.param(0);
        let pb = b.iconst(bit_base as i64);
        let pl = b.iconst(left_base as i64);
        let pr = b.iconst(right_base as i64);
        let pk = b.iconst(key_base as i64);
        let pcnt = b.iconst(count_cell as i64);
        let cur = b.fresh();
        b.assign(cur, 0);
        let depth = b.fresh();
        b.assign(depth, 23);
        let done = b.fresh();
        b.assign(done, 0);
        b.while_loop(
            |b| {
                let more = b.cmp(Pred::Ge, depth, 0);
                let not_done = b.cmp(Pred::Eq, done, 0);
                b.and(more, not_done)
            },
            |b| {
                let bit0 = b.shr(key, depth);
                let bit = b.and(bit0, 1);
                let go_right = b.cmp(Pred::Ne, bit, 0);
                let childp = b.fresh();
                b.if_else(
                    go_right,
                    |b| {
                        let v = load_idx(b, pr, cur);
                        b.assign(childp, v);
                    },
                    |b| {
                        let v = load_idx(b, pl, cur);
                        b.assign(childp, v);
                    },
                );
                let empty = b.cmp(Pred::Eq, childp, 0);
                b.if_else(
                    empty,
                    |b| {
                        // Allocate a new node.
                        let cnt = b.load(pcnt, 0);
                        let newn = b.add(cnt, 1);
                        b.store(newn, pcnt, 0);
                        store_idx(b, pk, newn, key);
                        store_idx(b, pb, newn, depth);
                        b.if_else(
                            go_right,
                            |b| store_idx(b, pr, cur, newn),
                            |b| store_idx(b, pl, cur, newn),
                        );
                        b.assign(done, 1);
                    },
                    |b| {
                        b.assign(cur, childp);
                        let d1 = b.sub(depth, 1);
                        b.assign(depth, d1);
                    },
                );
            },
        );
        b.ret_void();
        mb.add(b.finish())
    };

    // lookup(key) -> stored key of closest node.
    let lookup = {
        let mut b = FuncBuilder::new("lookup", 1);
        let key = b.param(0);
        let pl = b.iconst(left_base as i64);
        let pr = b.iconst(right_base as i64);
        let pk = b.iconst(key_base as i64);
        let cur = b.fresh();
        b.assign(cur, 0);
        let depth = b.fresh();
        b.assign(depth, 23);
        let last = b.fresh();
        b.assign(last, 0);
        b.while_loop(
            |b| {
                let more = b.cmp(Pred::Ge, depth, 0);
                let alive = b.cmp(Pred::Ge, cur, 0);
                b.and(more, alive)
            },
            |b| {
                let bit0 = b.shr(key, depth);
                let bit = b.and(bit0, 1);
                let go_right = b.cmp(Pred::Ne, bit, 0);
                let nxt = b.fresh();
                b.if_else(
                    go_right,
                    |b| {
                        let v = load_idx(b, pr, cur);
                        b.assign(nxt, v);
                    },
                    |b| {
                        let v = load_idx(b, pl, cur);
                        b.assign(nxt, v);
                    },
                );
                let empty = b.cmp(Pred::Eq, nxt, 0);
                b.if_else(
                    empty,
                    |b| b.assign(cur, -1), // stop
                    |b| {
                        b.assign(cur, nxt);
                        let k = load_idx(b, pk, nxt);
                        b.assign(last, k);
                        let d1 = b.sub(depth, 1);
                        b.assign(depth, d1);
                    },
                );
            },
        );
        b.ret(last);
        mb.add(b.finish())
    };

    let mut b = FuncBuilder::new("main", 0);
    let pkeys = b.iconst(keys as i64);
    let pq = b.iconst(queries as i64);
    b.counted_loop(0, n_keys, 1, |b, i| {
        let k = load_idx(b, pkeys, i);
        b.call_void(insert, &[k.into()]);
    });
    let acc = b.iconst(0);
    b.counted_loop(0, n_keys, 1, |b, i| {
        let q = load_idx(b, pq, i);
        let r = b.call(lookup, &[q.into()]);
        emit_hash_step(b, acc, r);
    });
    b.ret(acc);
    finish_main(mb, b)
}
