//! Office benchmarks: `ispell`, `lout`, `say`, `search` (stringsearch).

use crate::kernels::*;
use portopt_ir::{FuncBuilder, Module, ModuleBuilder, Operand, Pred};

/// `ispell` — dictionary spell-check: per-word hashing through a small
/// helper (inline-me) plus probe chains in a hash table.
pub fn ispell(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("ispell");
    let n_words: i64 = 900;
    let word_len: i64 = 6;
    let text = rand_global(&mut mb, "text", (n_words * word_len) as u32, seed, 97, 123);
    const TABLE: i64 = 1024;
    let dict = rand_global(&mut mb, "dict", TABLE as u32, seed ^ 0xD1C7, 0, 1 << 30);

    // hash_char(h, c): tiny leaf, called per character.
    let hash_char = {
        let mut b = FuncBuilder::new("hash_char", 2);
        let (h, c) = (b.param(0), b.param(1));
        let m = b.mul(h, 31);
        let s = b.add(m, c);
        let t = b.and(s, 0x7FFF_FFFF);
        b.ret(t);
        mb.add(b.finish())
    };

    let mut b = FuncBuilder::new("main", 0);
    let pt = b.iconst(text as i64);
    let pd = b.iconst(dict as i64);
    let found = b.iconst(0);
    b.counted_loop(0, n_words, 1, |b, w| {
        let base = b.mul(w, word_len);
        let h = b.fresh();
        b.assign(h, 5381);
        b.counted_loop(0, word_len, 1, |b, k| {
            let idx = b.add(base, k);
            let c = load_idx(b, pt, idx);
            let nh = b.call(hash_char, &[h.into(), c.into()]);
            b.assign(h, nh);
        });
        // Linear probe up to 4 slots.
        let slot = b.rem(h, TABLE);
        let hit = b.fresh();
        b.assign(hit, 0);
        b.counted_loop(0, 4, 1, |b, probe| {
            let s0 = b.add(slot, probe);
            let s = b.rem(s0, TABLE);
            let entry = load_idx(b, pd, s);
            let low = b.and(entry, 0xFFFF);
            let hlow = b.and(h, 0xFFFF);
            let eq = b.cmp(Pred::Eq, low, hlow);
            b.if_then(eq, |b| b.assign(hit, 1));
        });
        let t = b.add(found, hit);
        b.assign(found, t);
    });
    b.ret(found);
    finish_main(mb, b)
}

/// `lout` — document formatter: optimal line breaking by dynamic
/// programming over word widths (nested loops + min updates).
pub fn lout(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("lout");
    let n_words: i64 = 260;
    const LINE: i64 = 60;
    let widths = rand_global(&mut mb, "widths", n_words as u32, seed, 1, 14);
    let (_, cost_base) = mb.global("cost", (n_words + 1) as u32);

    let mut b = FuncBuilder::new("main", 0);
    let pw = b.iconst(widths as i64);
    let pc = b.iconst(cost_base as i64);
    const INF: i64 = 1 << 40;
    b.counted_loop(0, n_words + 1, 1, |b, i| {
        store_idx(b, pc, i, INF);
    });
    store_idx(&mut b, pc, 0i64, 0i64);
    b.counted_loop(0, n_words, 1, |b, i| {
        // Try lines starting at word i.
        let len = b.fresh();
        b.assign(len, 0);
        let j = b.fresh();
        b.assign(j, i);
        let ci = load_idx(b, pc, i);
        let live = b.cmp(Pred::Lt, ci, INF);
        b.if_then(live, |b| {
            b.while_loop(
                |b| {
                    let in_range = b.cmp(Pred::Lt, j, n_words);
                    let fits = b.cmp(Pred::Le, len, LINE);
                    b.and(in_range, fits)
                },
                |b| {
                    let wj = load_idx(b, pw, j);
                    let l2 = b.add(len, wj);
                    let l3 = b.add(l2, 1); // space
                    b.assign(len, l3);
                    let fits = b.cmp(Pred::Le, len, LINE);
                    b.if_then(fits, |b| {
                        // cost = (LINE - len)^2 badness.
                        let slack = b.sub(LINE, len);
                        let bad = b.mul(slack, slack);
                        let cand = b.add(ci, bad);
                        let j1 = b.add(j, 1);
                        let cj = load_idx(b, pc, j1);
                        let better = b.cmp(Pred::Lt, cand, cj);
                        b.if_then(better, |b| {
                            store_idx(b, pc, j1, cand);
                        });
                    });
                    let j1 = b.add(j, 1);
                    b.assign(j, j1);
                },
            );
        });
    });
    let r = load_idx(&mut b, pc, n_words);
    let m = b.rem(r, 1_000_003);
    b.ret(m);
    finish_main(mb, b)
}

/// `say` — speech synthesiser front end: per-character phoneme rules via
/// small helper functions and a state machine (call-heavy, like `ispell`).
pub fn say(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("say");
    let n: i64 = 4000;
    let text = rand_global(&mut mb, "text", n as u32, seed, 97, 123);
    let rules = rand_global(&mut mb, "rules", 26 * 4, seed ^ 0x5A7, 1, 100);

    // classify(c): vowel/consonant/sibilant decision tree (leaf).
    let classify = {
        let mut b = FuncBuilder::new("classify", 1);
        let c = b.param(0);
        let out = b.fresh();
        b.assign(out, 0);
        for (k, vowel) in [97i64, 101, 105, 111, 117].iter().enumerate() {
            let is = b.cmp(Pred::Eq, c, *vowel);
            let k = k as i64 + 1;
            b.if_then(is, |b| b.assign(out, k));
        }
        b.ret(out);
        mb.add(b.finish())
    };
    // pitch(state, class): table-driven pitch contour (leaf).
    let pitch = {
        let mut b = FuncBuilder::new("pitch", 2);
        let (st, cl) = (b.param(0), b.param(1));
        let pr = b.iconst(rules as i64);
        let i0 = b.shl(cl, 2);
        let mix = b.and(st, 3);
        let idx0 = b.add(i0, mix);
        let idx = b.rem(idx0, 26 * 4);
        let v = load_idx(&mut b, pr, idx);
        b.ret(v);
        mb.add(b.finish())
    };

    let mut b = FuncBuilder::new("main", 0);
    let ptext = b.iconst(text as i64);
    let state = b.fresh();
    b.assign(state, 1);
    let acc = b.iconst(0);
    b.counted_loop(0, n, 1, |b, i| {
        let c = load_idx(b, ptext, i);
        let cl = b.call(classify, &[c.into()]);
        let p = b.call(pitch, &[state.into(), cl.into()]);
        // State transition.
        let vowel = b.cmp(Pred::Gt, cl, 0);
        b.if_else(
            vowel,
            |b| {
                let s = b.add(state, p);
                let m = b.and(s, 0xFFFF);
                b.assign(state, m);
            },
            |b| {
                let s = b.shl(state, 1);
                let x = b.xor(s, c);
                let m = b.and(x, 0xFFFF);
                b.assign(state, m);
            },
        );
        emit_hash_step(b, acc, state);
    });
    b.ret(acc);
    finish_main(mb, b)
}

/// `search` — Boyer–Moore–Horspool string search over a large text with a
/// fixed-length pattern: short known-trip-count compare loops, the paper's
/// biggest winner (unrolling + scheduling pay off massively).
pub fn search(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("search");
    let n: i64 = 9000;
    const M: i64 = 8; // pattern length (known at compile time)
    let text = rand_global(&mut mb, "text", n as u32, seed, 97, 101); // a..d
    let pattern = rand_global(&mut mb, "pattern", M as u32, seed ^ 0xBEEF, 97, 101);
    let (_, skip_base) = mb.global("skip", 128);

    let mut b = FuncBuilder::new("main", 0);
    let pt = b.iconst(text as i64);
    let pp = b.iconst(pattern as i64);
    let psk = b.iconst(skip_base as i64);
    // Build the skip table.
    b.counted_loop(0, 128, 1, |b, c| {
        store_idx(b, psk, c, M);
    });
    b.counted_loop(0, M - 1, 1, |b, k| {
        let c = load_idx(b, pp, k);
        let s = b.sub(M - 1, k);
        store_idx(b, psk, c, s);
    });

    let matches = b.iconst(0);
    let pos = b.fresh();
    b.assign(pos, 0);
    b.while_loop(
        |b| b.cmp(Pred::Le, pos, n - M),
        |b| {
            // Compare the pattern right-to-left (fixed M iterations with an
            // early-out flag: the unrollable hot loop).
            let ok = b.fresh();
            b.assign(ok, 1);
            b.counted_loop(0, M, 1, |b, k| {
                let idx0 = b.add(pos, M - 1);
                let idx = b.sub(idx0, k);
                let tc = load_idx(b, pt, idx);
                let pidx = b.sub(M - 1, k);
                let pc = load_idx(b, pp, pidx);
                let ne = b.cmp(Pred::Ne, tc, pc);
                b.if_then(ne, |b| b.assign(ok, 0));
            });
            let hit = b.cmp(Pred::Ne, ok, 0);
            b.if_then(hit, |b| {
                let t = b.add(matches, 1);
                b.assign(matches, t);
            });
            // Horspool skip on the last window character.
            let lidx = b.add(pos, M - 1);
            let lc = load_idx(b, pt, lidx);
            let sk = load_idx(b, psk, lc);
            let np = b.add(pos, sk);
            b.assign(pos, np);
        },
    );
    let h = b.mul(matches, 2654435761i64);
    let r = b.and(h, 0x7FFF_FFFF);
    let r2 = b.add(r, matches);
    b.ret(r2);
    let _ = Operand::Imm(0);
    finish_main(mb, b)
}
