//! Security benchmarks: `bf_e`, `bf_d`, `pgp`, `pgp_sa`, `rijndael_e`,
//! `rijndael_d`, `sha`.

use crate::kernels::*;
use portopt_ir::{FuncBuilder, Module, ModuleBuilder, Pred, VReg};

/// Blowfish-style Feistel kernel: 16 rounds of S-box lookups per block.
fn blowfish(name: &str, seed: u64, decrypt: bool) -> Module {
    let mut mb = ModuleBuilder::new(name);
    let blocks: i64 = 700;
    let data = rand_global(&mut mb, "data", (blocks * 2) as u32, seed, 0, 1 << 30);
    let sbox = rand_global(&mut mb, "sbox", 1024, seed ^ 0xBF, 0, 1 << 30);
    let pbox = rand_global(&mut mb, "pbox", 18, seed ^ 0x1F, 0, 1 << 30);

    let mut b = FuncBuilder::new("main", 0);
    let pd = b.iconst(data as i64);
    let ps = b.iconst(sbox as i64);
    let pp = b.iconst(pbox as i64);
    let acc = b.iconst(0);
    b.counted_loop(0, blocks, 1, |b, blk| {
        let li = b.shl(blk, 1);
        let ri = b.add(li, 1);
        let l = b.fresh();
        let r = b.fresh();
        let l0 = load_idx(b, pd, li);
        let r0 = load_idx(b, pd, ri);
        b.assign(l, l0);
        b.assign(r, r0);
        b.counted_loop(0, 16, 1, |b, round| {
            // P-box xor (decrypt walks the schedule backwards).
            let pidx = if decrypt {
                b.sub(17, round)
            } else {
                b.add(round, 0)
            };
            let pk = load_idx(b, pp, pidx);
            let lx = b.xor(l, pk);
            b.assign(l, lx);
            // F function: four S-box lookups combined.
            let b0 = b.and(l, 0xFF);
            let b1s = b.shr(l, 8);
            let b1 = b.and(b1s, 0xFF);
            let b2s = b.shr(l, 16);
            let b2 = b.and(b2s, 0xFF);
            let b3s = b.shr(l, 24);
            let b3 = b.and(b3s, 0xFF);
            let s0 = load_idx(b, ps, b0);
            let i1 = b.add(b1, 256);
            let s1 = load_idx(b, ps, i1);
            let i2 = b.add(b2, 512);
            let s2 = load_idx(b, ps, i2);
            let i3 = b.add(b3, 768);
            let s3 = load_idx(b, ps, i3);
            let f0 = b.add(s0, s1);
            let f1 = b.xor(f0, s2);
            let f = b.add(f1, s3);
            let fm = b.and(f, 0xFFFF_FFFF);
            let rx = b.xor(r, fm);
            // Swap halves.
            let tmp = b.fresh();
            b.assign(tmp, l);
            b.assign(l, rx);
            b.assign(r, tmp);
        });
        store_idx(b, pd, li, r);
        store_idx(b, pd, ri, l);
        emit_hash_step(b, acc, r);
    });
    b.ret(acc);
    finish_main(mb, b)
}

/// `bf_e` — Blowfish encryption.
pub fn bf_e(seed: u64) -> Module {
    blowfish("bf_e", seed, false)
}

/// `bf_d` — Blowfish decryption.
pub fn bf_d(seed: u64) -> Module {
    blowfish("bf_d", seed, true)
}

/// Emits one hand-unrolled AES-ish round: 4 table lookups + xors per word,
/// straight-line. `rijndael`'s source unrolls all rounds, so the generated
/// code is big and loop-free — `-funroll-loops` is useless on it (the
/// paper's own explanation for its Figure 5 outlier) and small instruction
/// caches punish any further code growth.
fn rijndael_round(b: &mut FuncBuilder, tbox: VReg, state: &[VReg; 4], round_key: i64) {
    let old = [state[0], state[1], state[2], state[3]];
    let olds: Vec<VReg> = old
        .iter()
        .map(|&r| {
            let t = b.fresh();
            b.assign(t, r);
            t
        })
        .collect();
    for w in 0..4 {
        let a0 = b.and(olds[w], 0xFF);
        let s1 = b.shr(olds[(w + 1) % 4], 8);
        let a1 = b.and(s1, 0xFF);
        let s2 = b.shr(olds[(w + 2) % 4], 16);
        let a2 = b.and(s2, 0xFF);
        let s3 = b.shr(olds[(w + 3) % 4], 24);
        let a3 = b.and(s3, 0xFF);
        let t0 = load_idx(b, tbox, a0);
        let i1 = b.add(a1, 256);
        let t1 = load_idx(b, tbox, i1);
        let i2 = b.add(a2, 512);
        let t2 = load_idx(b, tbox, i2);
        let i3 = b.add(a3, 768);
        let t3 = load_idx(b, tbox, i3);
        let x0 = b.xor(t0, t1);
        let x1 = b.xor(x0, t2);
        let x2 = b.xor(x1, t3);
        let x3 = b.xor(x2, round_key + w as i64);
        let m = b.and(x3, 0xFFFF_FFFF);
        b.assign(state[w], m);
    }
}

/// Rijndael kernel with source-level-unrolled rounds.
fn rijndael(name: &str, seed: u64, rounds: usize) -> Module {
    let mut mb = ModuleBuilder::new(name);
    let nblocks: i64 = 260;
    let data = rand_global(&mut mb, "data", (nblocks * 4) as u32, seed, 0, 1 << 30);
    let tbox = rand_global(&mut mb, "tbox", 1024, seed ^ 0xAE5, 0, 1 << 30);

    let mut b = FuncBuilder::new("main", 0);
    let pd = b.iconst(data as i64);
    let pt = b.iconst(tbox as i64);
    let acc = b.iconst(0);
    b.counted_loop(0, nblocks, 1, |b, blk| {
        let base = b.shl(blk, 2);
        let s0 = b.fresh();
        let s1 = b.fresh();
        let s2 = b.fresh();
        let s3 = b.fresh();
        for (w, reg) in [s0, s1, s2, s3].into_iter().enumerate() {
            let idx = b.add(base, w as i64);
            let v = load_idx(b, pd, idx);
            b.assign(reg, v);
        }
        let state = [s0, s1, s2, s3];
        // Hand-unrolled rounds: straight-line code, large footprint.
        for r in 0..rounds {
            rijndael_round(b, pt, &state, 0x1010 * (r as i64 + 1));
        }
        for (w, reg) in state.into_iter().enumerate() {
            let idx = b.add(base, w as i64);
            store_idx(b, pd, idx, reg);
        }
        emit_hash_step(b, acc, state[0]);
    });
    b.ret(acc);
    finish_main(mb, b)
}

/// `rijndael_e` — AES-ish encryption, 10 hand-unrolled rounds.
pub fn rijndael_e(seed: u64) -> Module {
    rijndael("rijndael_e", seed, 10)
}

/// `rijndael_d` — AES-ish decryption, 10 hand-unrolled rounds (different
/// seed mix so the working set differs from `rijndael_e`).
pub fn rijndael_d(seed: u64) -> Module {
    rijndael("rijndael_d", seed.wrapping_mul(0x9E37_79B9), 10)
}

/// `sha` — SHA-1-style compression: shift/xor message schedule plus a
/// four-phase compression loop with known trip counts.
pub fn sha(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("sha");
    let nblocks: i64 = 90;
    let msg = rand_global(&mut mb, "msg", (nblocks * 16) as u32, seed, 0, 1 << 30);
    let (_, w_base) = mb.global("w", 80);

    let mut b = FuncBuilder::new("main", 0);
    let pm = b.iconst(msg as i64);
    let pw = b.iconst(w_base as i64);
    let h0 = b.fresh();
    b.assign(h0, 0x6745_2301i64);
    let h1 = b.fresh();
    b.assign(h1, 0xEFCD_AB89i64);
    let h2 = b.fresh();
    b.assign(h2, 0x98BA_DCFEi64);

    b.counted_loop(0, nblocks, 1, |b, blk| {
        let base = b.shl(blk, 4);
        // Schedule: w[0..16] = msg; w[16..80] = rotl1(xor of taps).
        b.counted_loop(0, 16, 1, |b, t| {
            let idx = b.add(base, t);
            let v = load_idx(b, pm, idx);
            store_idx(b, pw, t, v);
        });
        b.counted_loop(16, 80, 1, |b, t| {
            let i3 = b.sub(t, 3);
            let i8 = b.sub(t, 8);
            let i14 = b.sub(t, 14);
            let i16 = b.sub(t, 16);
            let a = load_idx(b, pw, i3);
            let c = load_idx(b, pw, i8);
            let d = load_idx(b, pw, i14);
            let e = load_idx(b, pw, i16);
            let x0 = b.xor(a, c);
            let x1 = b.xor(x0, d);
            let x2 = b.xor(x1, e);
            let hi = b.shl(x2, 1);
            let lo = b.shr(x2, 31);
            let lo2 = b.and(lo, 1);
            let rot0 = b.or(hi, lo2);
            let rot = b.and(rot0, 0xFFFF_FFFF);
            store_idx(b, pw, t, rot);
        });
        // Compression (simplified three-register variant).
        b.counted_loop(0, 80, 1, |b, t| {
            let w = load_idx(b, pw, t);
            let f = b.fresh();
            let phase = b.div(t, 20);
            let is0 = b.cmp(Pred::Eq, phase, 0);
            b.if_else(
                is0,
                |b| {
                    // Ch(h1, h2): (h1 & h2) | (!h1 & const)
                    let x = b.and(h1, h2);
                    b.assign(f, x);
                },
                |b| {
                    let x = b.xor(h1, h2);
                    b.assign(f, x);
                },
            );
            let rot5h = b.shl(h0, 5);
            let rot5l = b.shr(h0, 27);
            let rot5 = b.or(rot5h, rot5l);
            let s0 = b.add(rot5, f);
            let s1 = b.add(s0, w);
            let s2 = b.add(s1, 0x5A82_7999);
            let nm = b.and(s2, 0xFFFF_FFFF);
            b.assign(h2, h1);
            b.assign(h1, h0);
            b.assign(h0, nm);
        });
    });
    let d0 = b.xor(h0, h1);
    let d1 = b.xor(d0, h2);
    b.ret(d1);
    finish_main(mb, b)
}

/// Modular-exponentiation kernel shared by `pgp` and `pgp_sa` — call-heavy
/// (`mulmod` helper per step), div/rem dominated, the inlining showcase of
/// the paper's Figure 8.
fn pgp_kernel(name: &str, seed: u64, exponent_bits: i64) -> Module {
    let mut mb = ModuleBuilder::new(name);
    let nmsgs: i64 = 40;
    let msgs = rand_global(&mut mb, "msgs", nmsgs as u32, seed, 2, 1 << 20);

    // mulmod(a, b, m) = a*b % m — small, hot, inline-me.
    let mulmod = {
        let mut b = FuncBuilder::new("mulmod", 3);
        let p = b.mul(b.param(0), b.param(1));
        let r = b.rem(p, b.param(2));
        b.ret(r);
        mb.add(b.finish())
    };

    let mut b = FuncBuilder::new("main", 0);
    let pm = b.iconst(msgs as i64);
    let modulus = b.iconst(1_000_003);
    let acc = b.iconst(0);
    b.counted_loop(0, nmsgs, 1, |b, i| {
        let base = load_idx(b, pm, i);
        let result = b.fresh();
        b.assign(result, 1);
        let pow = b.fresh();
        b.assign(pow, base);
        // Square-and-multiply with a fixed exponent pattern.
        b.counted_loop(0, exponent_bits, 1, |b, bit| {
            let odd = b.and(bit, 1);
            let use_mul = b.cmp(Pred::Ne, odd, 0);
            b.if_then(use_mul, |b| {
                let r = b.call(mulmod, &[result.into(), pow.into(), modulus.into()]);
                b.assign(result, r);
            });
            let sq = b.call(mulmod, &[pow.into(), pow.into(), modulus.into()]);
            b.assign(pow, sq);
        });
        emit_hash_step(b, acc, result);
    });
    b.ret(acc);
    finish_main(mb, b)
}

/// `pgp` — RSA-style encryption stand-in.
pub fn pgp(seed: u64) -> Module {
    pgp_kernel("pgp", seed, 64)
}

/// `pgp_sa` — signature stand-in (longer exponent).
pub fn pgp_sa(seed: u64) -> Module {
    pgp_kernel("pgp_sa", seed ^ 0x5A, 96)
}
