//! Telecomm benchmarks: `crc`, `fft`, `fft_i`, `rawcaudio`, `rawdaudio`,
//! `toast`, `untoast`.

use crate::kernels::*;
use portopt_ir::{FuncBuilder, Module, ModuleBuilder, Operand, Pred};

/// `crc` — CRC-32 over a byte stream.
///
/// Faithful to the paper's description of the real benchmark: the hot loop
/// keeps its stream pointer in memory and calls a tiny fetch helper that
/// loads the pointer, reads a byte and stores the pointer back. Only
/// aggressive inlining (a large `max-inline-insns-auto`) followed by
/// load/store motion turns the pointer traffic into a register increment —
/// which is exactly why the paper's model struggles to find crc's best
/// configuration from counters alone (§5.3).
pub fn crc(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("crc");
    let n: i64 = 6000;
    let data = rand_global(&mut mb, "data", n as u32, seed, 0, 256);
    let table = {
        // CRC table: precomputed in Rust, faithful polynomial.
        let mut t = Vec::with_capacity(256);
        for i in 0..256u64 {
            let mut c = i;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            t.push(c as i64);
        }
        let (_, base) = mb.global_init("crctab", 256, t);
        base
    };
    let (_, ptr_cell) = mb.global("stream_ptr", 1);

    // next_byte(): *p++ with the pointer held in memory.
    let next_byte = {
        let mut b = FuncBuilder::new("next_byte", 0);
        let pc = b.iconst(ptr_cell as i64);
        let p = b.load(pc, 0);
        let v = b.load(p, 0);
        let p2 = b.add(p, 4);
        b.store(p2, pc, 0);
        b.ret(v);
        mb.add(b.finish())
    };

    let mut b = FuncBuilder::new("main", 0);
    let pc = b.iconst(ptr_cell as i64);
    b.store(data as i64, pc, 0);
    let tab = b.iconst(table as i64);
    let crc = b.fresh();
    b.assign(crc, 0xFFFF_FFFFi64);
    b.counted_loop(0, n, 1, |b, _i| {
        let byte = b.call(next_byte, &[]);
        let x = b.xor(crc, byte);
        let idx = b.and(x, 0xFF);
        let e = load_idx(b, tab, idx);
        let sh = b.shr(crc, 8);
        let masked = b.and(sh, 0x00FF_FFFF);
        let nc = b.xor(masked, e);
        b.assign(crc, nc);
    });
    b.ret(crc);
    finish_main(mb, b)
}

/// Shared fixed-point FFT-like butterfly kernel (forward or inverse).
fn fft_kernel(name: &str, seed: u64, inverse: bool) -> Module {
    let mut mb = ModuleBuilder::new(name);
    let n: i64 = 256; // power of two
    let re = rand_global(&mut mb, "re", n as u32, seed, -1000, 1000);
    let im = rand_global(&mut mb, "im", n as u32, seed ^ 0xABCD, -1000, 1000);
    // Fixed-point twiddle table (scaled by 1024): cos-ish ramp.
    let tw: Vec<i64> = (0..n)
        .map(|k| {
            let phase = (k as f64) * std::f64::consts::PI / n as f64;
            (phase.cos() * 1024.0) as i64
        })
        .collect();
    let (_, twid) = mb.global_init("twiddle", n as u32, tw);

    let mut b = FuncBuilder::new("main", 0);
    let pre = b.iconst(re as i64);
    let pim = b.iconst(im as i64);
    let ptw = b.iconst(twid as i64);

    // Bit-reversal permutation (shift-heavy).
    b.counted_loop(0, n, 1, |b, i| {
        let rev = b.fresh();
        b.assign(rev, 0);
        let tmp = b.fresh();
        b.assign(tmp, i);
        b.counted_loop(0, 8, 1, |b, _k| {
            let r2 = b.shl(rev, 1);
            let bit = b.and(tmp, 1);
            let r3 = b.or(r2, bit);
            b.assign(rev, r3);
            let t2 = b.shr(tmp, 1);
            b.assign(tmp, t2);
        });
        let c = b.cmp(Pred::Lt, i, rev);
        b.if_then(c, |b| {
            let a = load_idx(b, pre, i);
            let x = load_idx(b, pre, rev);
            store_idx(b, pre, i, x);
            store_idx(b, pre, rev, a);
        });
    });

    // log2(n)=8 stages of butterflies (MAC-heavy).
    let stage = b.fresh();
    b.assign(stage, 1);
    b.while_loop(
        |b| b.cmp(Pred::Lt, stage, n),
        |b| {
            let step = b.shl(stage, 1);
            b.counted_loop(0, stage, 1, |b, j| {
                let tw_idx = b.mul(j, n / 2);
                let tw_div = b.div(tw_idx, stage);
                let w = load_idx(b, ptw, tw_div);
                let k = b.fresh();
                b.assign(k, j);
                b.while_loop(
                    |b| b.cmp(Pred::Lt, k, n),
                    |b| {
                        let k2 = b.add(k, stage);
                        let xr = load_idx(b, pre, k2);
                        let xi = load_idx(b, pim, k2);
                        let tr0 = b.mul(xr, w);
                        let tr = b.sar(tr0, 10);
                        let ti0 = b.mul(xi, w);
                        let ti = b.sar(ti0, 10);
                        let ar = load_idx(b, pre, k);
                        let ai = load_idx(b, pim, k);
                        let sr = b.add(ar, tr);
                        let si = b.add(ai, ti);
                        let dr = b.sub(ar, tr);
                        let di = b.sub(ai, ti);
                        store_idx(b, pre, k, sr);
                        store_idx(b, pim, k, si);
                        store_idx(b, pre, k2, dr);
                        store_idx(b, pim, k2, di);
                        let kn = b.add(k, step);
                        b.assign(k, kn);
                    },
                );
            });
            let s2 = b.shl(stage, 1);
            b.assign(stage, s2);
        },
    );

    // Inverse scales by 1/n (arithmetic shifts).
    if inverse {
        b.counted_loop(0, n, 1, |b, i| {
            let v = load_idx(b, pre, i);
            let s = b.sar(v, 8);
            store_idx(b, pre, i, s);
            let v2 = load_idx(b, pim, i);
            let s2 = b.sar(v2, 8);
            store_idx(b, pim, i, s2);
        });
    }

    // Checksum.
    let acc = b.iconst(0);
    b.counted_loop(0, n, 1, |b, i| {
        let r = load_idx(b, pre, i);
        let m = load_idx(b, pim, i);
        let t = b.add(acc, r);
        let t2 = b.xor(t, m);
        b.assign(acc, t2);
    });
    b.ret(acc);
    finish_main(mb, b)
}

/// `fft` — fixed-point radix-2 FFT.
pub fn fft(seed: u64) -> Module {
    fft_kernel("fft", seed, false)
}

/// `fft_i` — inverse FFT (adds the scaling pass).
pub fn fft_i(seed: u64) -> Module {
    fft_kernel("fft_i", seed, true)
}

/// Shared ADPCM step tables.
fn adpcm_tables(mb: &mut ModuleBuilder) -> (u32, u32) {
    let steps: Vec<i64> = (0..89).map(|i| (7.0 * 1.1f64.powi(i)) as i64).collect();
    let (_, step_base) = mb.global_init("steps", 89, steps);
    let idx_adj: Vec<i64> = vec![-1, -1, -1, -1, 2, 4, 6, 8];
    let (_, adj_base) = mb.global_init("idxadj", 8, idx_adj);
    (step_base, adj_base)
}

/// `rawcaudio` — ADPCM encoder: branchy quantisation against a step table.
pub fn rawcaudio(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("rawcaudio");
    let n: i64 = 4000;
    let pcm = rand_global(&mut mb, "pcm", n as u32, seed, -16000, 16000);
    let (steps, adj) = adpcm_tables(&mut mb);

    let mut b = FuncBuilder::new("main", 0);
    let ppcm = b.iconst(pcm as i64);
    let pst = b.iconst(steps as i64);
    let padj = b.iconst(adj as i64);
    let valpred = b.fresh();
    b.assign(valpred, 0);
    let index = b.fresh();
    b.assign(index, 0);
    let out = b.iconst(0);
    b.counted_loop(0, n, 1, |b, i| {
        let sample = load_idx(b, ppcm, i);
        let step = load_idx(b, pst, index);
        let diff0 = b.sub(sample, valpred);
        let diff = emit_abs(b, diff0);
        let sign = b.cmp(Pred::Lt, diff0, 0);
        // 3-bit quantise: delta = min(diff*4/step, 7) via compare ladder.
        let scaled = b.shl(diff, 2);
        let q = b.div(scaled, step);
        let delta = b.fresh();
        let big = b.cmp(Pred::Gt, q, 7);
        b.if_else(big, |b| b.assign(delta, 7), |b| b.assign(delta, q));
        // Reconstruct.
        let dq0 = b.mul(delta, step);
        let dq = b.sar(dq0, 2);
        b.if_else(
            sign,
            |b| {
                let v = b.sub(valpred, dq);
                b.assign(valpred, v);
            },
            |b| {
                let v = b.add(valpred, dq);
                b.assign(valpred, v);
            },
        );
        // Clamp predictor.
        let hi = b.cmp(Pred::Gt, valpred, 32767);
        b.if_then(hi, |b| b.assign(valpred, 32767));
        let lo = b.cmp(Pred::Lt, valpred, -32768);
        b.if_then(lo, |b| b.assign(valpred, -32768));
        // Index update.
        let a = load_idx(b, padj, delta);
        let ni = b.add(index, a);
        b.assign(index, ni);
        let ilo = b.cmp(Pred::Lt, index, 0);
        b.if_then(ilo, |b| b.assign(index, 0));
        let ihi = b.cmp(Pred::Gt, index, 88);
        b.if_then(ihi, |b| b.assign(index, 88));
        // Accumulate code stream checksum.
        emit_hash_step(b, out, delta);
        let _ = i;
    });
    b.ret(out);
    finish_main(mb, b)
}

/// `rawdaudio` — ADPCM decoder (table-driven reconstruction).
pub fn rawdaudio(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("rawdaudio");
    let n: i64 = 5000;
    let codes = rand_global(&mut mb, "codes", n as u32, seed, 0, 8);
    let (steps, adj) = adpcm_tables(&mut mb);

    let mut b = FuncBuilder::new("main", 0);
    let pc = b.iconst(codes as i64);
    let pst = b.iconst(steps as i64);
    let padj = b.iconst(adj as i64);
    let valpred = b.fresh();
    b.assign(valpred, 0);
    let index = b.fresh();
    b.assign(index, 0);
    let acc = b.iconst(0);
    b.counted_loop(0, n, 1, |b, i| {
        let code = load_idx(b, pc, i);
        let step = load_idx(b, pst, index);
        let dq0 = b.mul(code, step);
        let dq = b.sar(dq0, 2);
        let odd = b.and(i, 1);
        let neg = b.cmp(Pred::Ne, odd, 0);
        b.if_else(
            neg,
            |b| {
                let v = b.sub(valpred, dq);
                b.assign(valpred, v);
            },
            |b| {
                let v = b.add(valpred, dq);
                b.assign(valpred, v);
            },
        );
        let a = load_idx(b, padj, code);
        let ni = b.add(index, a);
        b.assign(index, ni);
        let lo = b.cmp(Pred::Lt, index, 0);
        b.if_then(lo, |b| b.assign(index, 0));
        let hi = b.cmp(Pred::Gt, index, 88);
        b.if_then(hi, |b| b.assign(index, 88));
        let t = b.add(acc, valpred);
        b.assign(acc, t);
    });
    b.ret(acc);
    finish_main(mb, b)
}

/// Shared GSM-style short-term filter (`toast` encodes, `untoast` decodes).
fn gsm_kernel(name: &str, seed: u64, decode: bool) -> Module {
    let mut mb = ModuleBuilder::new(name);
    let frames: i64 = 18;
    let flen: i64 = 160;
    let n = frames * flen;
    let samples = rand_global(&mut mb, "samples", n as u32, seed, -8000, 8000);
    let (_, work) = mb.global("work", flen as u32);
    let coef: Vec<i64> = vec![410, 820, 1638, 3277, 6554, 13107, 16384, 8192];
    let (_, coefs) = mb.global_init("lar", 8, coef);

    // saturated add helper (called per sample: inlining target).
    let sat_add = {
        let mut b = FuncBuilder::new("sat_add", 2);
        let s = b.add(b.param(0), b.param(1));
        let hi = b.cmp(Pred::Gt, s, 32767);
        let out = b.fresh();
        b.assign(out, s);
        b.if_then(hi, |b| b.assign(out, 32767));
        let lo = b.cmp(Pred::Lt, out, -32768);
        b.if_then(lo, |b| b.assign(out, -32768));
        b.ret(out);
        mb.add(b.finish())
    };

    let mut b = FuncBuilder::new("main", 0);
    let psamp = b.iconst(samples as i64);
    let pwork = b.iconst(work as i64);
    let pcoef = b.iconst(coefs as i64);
    let acc = b.iconst(0);
    b.counted_loop(0, frames, 1, |b, f| {
        let base = b.mul(f, flen);
        // Short-term analysis/synthesis: 8-tap lattice per sample.
        b.counted_loop(0, flen, 1, |b, k| {
            let idx = b.add(base, k);
            let s = load_idx(b, psamp, idx);
            let t = b.fresh();
            b.assign(t, s);
            b.counted_loop(0, 8, 1, |b, tap| {
                let c = load_idx(b, pcoef, tap);
                let prod = b.mul(t, c);
                let scaled = b.sar(prod, 15);
                let nt = if decode {
                    b.sub(t, scaled)
                } else {
                    b.add(t, scaled)
                };
                b.assign(t, nt);
            });
            let sat = b.call(sat_add, &[t.into(), Operand::Imm(0)]);
            store_idx(b, pwork, k, sat);
        });
        // Frame energy checksum.
        b.counted_loop(0, flen, 1, |b, k| {
            let v = load_idx(b, pwork, k);
            emit_hash_step(b, acc, v);
        });
    });
    b.ret(acc);
    finish_main(mb, b)
}

/// `toast` — GSM full-rate encoder stand-in.
pub fn toast(seed: u64) -> Module {
    gsm_kernel("toast", seed, false)
}

/// `untoast` — GSM decoder stand-in.
pub fn untoast(seed: u64) -> Module {
    gsm_kernel("untoast", seed, true)
}
