//! # portopt-mibench
//!
//! A 35-program synthetic embedded benchmark suite with the names and
//! computational characters of MiBench (Guthaus et al., WWC 2001), written
//! in the `portopt-ir` builder DSL.
//!
//! These are not ports of MiBench — the paper's model only ever sees
//! hardware counters, so what matters is a *diverse population* of program
//! behaviours whose best optimisation settings vary across
//! microarchitectures (see DESIGN.md §4.3). Each program mimics its
//! namesake's dominant kernel: `rijndael_*` is hand-unrolled straight-line
//! table code, `crc` keeps its stream pointer in memory behind a helper
//! call, `search` runs known-trip-count compare loops, `qsort` and
//! `basicmath` are compare/divide bound with little flag headroom, and so
//! on.
//!
//! Every program is deterministic (seeded inputs) and returns a checksum,
//! so compiled variants can be differentially tested.
//!
//! ```
//! use portopt_mibench::{suite, Workload};
//! let progs = suite(Workload::default());
//! assert_eq!(progs.len(), 35);
//! assert!(progs.iter().any(|p| p.name == "rijndael_e"));
//! ```

#![warn(missing_docs)]

mod auto;
mod consumer;
mod kernels;
mod network;
mod office;
mod security;
mod telecomm;

use portopt_ir::Module;

/// MiBench category of a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Automotive / industrial control.
    Auto,
    /// Consumer devices.
    Consumer,
    /// Networking.
    Network,
    /// Office automation.
    Office,
    /// Security.
    Security,
    /// Telecommunications.
    Telecomm,
}

/// Workload configuration (the "input set" knob of MiBench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Base RNG seed mixed into every program's input.
    pub seed: u64,
}

impl Default for Workload {
    fn default() -> Self {
        Workload { seed: 2009 }
    }
}

/// A benchmark program: name, category and IR module.
#[derive(Debug, Clone)]
pub struct Program {
    /// MiBench program name (Figure 4's x-axis labels).
    pub name: &'static str,
    /// Suite category.
    pub category: Category,
    /// The program itself.
    pub module: Module,
}

macro_rules! suite_table {
    ($($name:ident : $cat:ident in $module:ident),* $(,)?) => {
        /// All program names, in the paper's Figure 4 order.
        pub const PROGRAM_NAMES: &[&str] = &[$(stringify!($name)),*];

        /// Builds the full 35-program suite.
        pub fn suite(w: Workload) -> Vec<Program> {
            vec![$(
                Program {
                    name: stringify!($name),
                    category: Category::$cat,
                    module: $module::$name(w.seed ^ const_fnv(stringify!($name))),
                },
            )*]
        }

        /// Builds one program by name.
        pub fn by_name(name: &str, w: Workload) -> Option<Program> {
            match name {
                $(stringify!($name) => Some(Program {
                    name: stringify!($name),
                    category: Category::$cat,
                    module: $module::$name(w.seed ^ const_fnv(stringify!($name))),
                }),)*
                _ => None,
            }
        }
    };
}

/// Tiny compile-time FNV hash to derive per-program seeds.
const fn const_fnv(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut i = 0;
    while i < bytes.len() {
        h ^= bytes[i] as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
        i += 1;
    }
    h
}

// Figure 4 order (left to right).
suite_table! {
    qsort: Auto in auto,
    rawcaudio: Telecomm in telecomm,
    tiff2rgba: Consumer in consumer,
    gs: Consumer in consumer,
    djpeg: Consumer in consumer,
    patricia: Network in network,
    basicmath: Auto in auto,
    lout: Office in office,
    fft_i: Telecomm in telecomm,
    fft: Telecomm in telecomm,
    susan_s: Auto in auto,
    susan_c: Auto in auto,
    tiffmedian: Consumer in consumer,
    ispell: Office in office,
    pgp: Security in security,
    tiffdither: Consumer in consumer,
    bf_e: Security in security,
    bf_d: Security in security,
    rawdaudio: Telecomm in telecomm,
    pgp_sa: Security in security,
    tiff2bw: Consumer in consumer,
    cjpeg: Consumer in consumer,
    lame: Consumer in consumer,
    dijkstra: Network in network,
    susan_e: Auto in auto,
    toast: Telecomm in telecomm,
    madplay: Consumer in consumer,
    untoast: Telecomm in telecomm,
    sha: Security in security,
    bitcnts: Auto in auto,
    say: Office in office,
    rijndael_d: Security in security,
    crc: Telecomm in telecomm,
    rijndael_e: Security in security,
    search: Office in office,
}

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_ir::interp::{run_module_with, ExecLimits};
    use portopt_ir::verify_module;

    #[test]
    fn suite_has_35_distinct_programs() {
        let progs = suite(Workload::default());
        assert_eq!(progs.len(), 35);
        let mut names: Vec<_> = progs.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 35);
        assert_eq!(PROGRAM_NAMES.len(), 35);
    }

    #[test]
    fn all_programs_verify() {
        for p in suite(Workload::default()) {
            verify_module(&p.module).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn all_programs_run_to_completion_in_budget() {
        for p in suite(Workload::default()) {
            let r = run_module_with(
                &p.module,
                &[],
                ExecLimits {
                    fuel: 20_000_000,
                    max_depth: 512,
                },
            )
            .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert!(
                (10_000..8_000_000).contains(&r.dyn_insts),
                "{}: {} dynamic instructions outside budget",
                p.name,
                r.dyn_insts
            );
        }
    }

    #[test]
    fn deterministic_per_seed_and_sensitive_to_seed() {
        let a = by_name("sha", Workload::default()).unwrap();
        let b = by_name("sha", Workload::default()).unwrap();
        assert_eq!(a.module, b.module);
        let c = by_name("sha", Workload { seed: 1 }).unwrap();
        assert_ne!(a.module, c.module, "different seed must change inputs");
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("doom", Workload::default()).is_none());
    }

    #[test]
    fn programs_have_nonzero_checksums_mostly() {
        // Smoke: programs produce varied, non-trivial results.
        let mut nonzero = 0;
        for p in suite(Workload::default()) {
            let r = run_module_with(
                &p.module,
                &[],
                ExecLimits {
                    fuel: 20_000_000,
                    max_depth: 512,
                },
            )
            .unwrap();
            if r.ret != 0 {
                nonzero += 1;
            }
        }
        assert!(nonzero >= 30, "only {nonzero} programs returned non-zero");
    }
}
