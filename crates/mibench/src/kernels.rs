//! Shared building blocks for the benchmark programs.

use portopt_ir::{FuncBuilder, ModuleBuilder, Operand, Pred, VReg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic pseudo-random words for a program input.
pub fn input_words(seed: u64, n: usize, lo: i64, hi: i64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Adds a global array initialised with seeded random words in `lo..hi`;
/// returns its base address.
pub fn rand_global(
    mb: &mut ModuleBuilder,
    name: &str,
    words: u32,
    seed: u64,
    lo: i64,
    hi: i64,
) -> u32 {
    let data = input_words(seed, words as usize, lo, hi);
    let (_, base) = mb.global_init(name, words, data);
    base
}

/// Loads `arr[idx]` where `arr` is a word array at `base` (a register).
pub fn load_idx(b: &mut FuncBuilder, base: VReg, idx: impl Into<Operand>) -> VReg {
    let off = b.shl(idx, 2);
    let addr = b.add(base, off);
    b.load(addr, 0)
}

/// Stores `val` to `arr[idx]`.
pub fn store_idx(
    b: &mut FuncBuilder,
    base: VReg,
    idx: impl Into<Operand>,
    val: impl Into<Operand>,
) {
    let off = b.shl(idx, 2);
    let addr = b.add(base, off);
    b.store(val, addr, 0);
}

/// Emits `min(a, b)` into a fresh register.
#[allow(dead_code)] // part of the kernel toolkit; used by tests
pub fn emit_min(b: &mut FuncBuilder, x: VReg, y: VReg) -> VReg {
    let out = b.fresh();
    let c = b.cmp(Pred::Lt, x, y);
    b.if_else(c, |b| b.assign(out, x), |b| b.assign(out, y));
    out
}

/// Emits `|a|`.
pub fn emit_abs(b: &mut FuncBuilder, x: VReg) -> VReg {
    let out = b.fresh();
    let c = b.cmp(Pred::Lt, x, 0);
    b.if_else(
        c,
        |b| {
            let n = b.sub(0, x);
            b.assign(out, n);
        },
        |b| b.assign(out, x),
    );
    out
}

/// Emits a multiplicative hash step: `h = (h ^ v) * 0x9E3779B1 mod 2^32`.
pub fn emit_hash_step(b: &mut FuncBuilder, h: VReg, v: impl Into<Operand>) {
    let x = b.xor(h, v);
    let m = b.mul(x, 0x9E37_79B1);
    let t = b.and(m, 0xFFFF_FFFF);
    b.assign(h, t);
}

/// A standard program skeleton: build `main`, register it as the entry.
pub fn finish_main(mut mb: ModuleBuilder, main: FuncBuilder) -> portopt_ir::Module {
    let id = mb.add(main.finish());
    mb.entry(id);
    let m = mb.finish();
    debug_assert!(portopt_ir::verify_module(&m).is_ok());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_ir::interp::run_module;

    #[test]
    fn input_words_deterministic() {
        assert_eq!(input_words(7, 16, 0, 100), input_words(7, 16, 0, 100));
        assert_ne!(input_words(7, 16, 0, 100), input_words(8, 16, 0, 100));
        assert!(input_words(1, 64, -5, 5)
            .iter()
            .all(|&v| (-5..5).contains(&v)));
    }

    #[test]
    fn helpers_compute_correctly() {
        let mut mb = ModuleBuilder::new("t");
        let base = rand_global(&mut mb, "a", 8, 3, 0, 50);
        let mut b = FuncBuilder::new("main", 2);
        let (x, y) = (b.param(0), b.param(1));
        let mn = emit_min(&mut b, x, y);
        let ab = emit_abs(&mut b, mn);
        let p = b.iconst(base as i64);
        let v0 = load_idx(&mut b, p, 0);
        store_idx(&mut b, p, 1, v0);
        let v1 = load_idx(&mut b, p, 1);
        let s = b.add(ab, v1);
        b.ret(s);
        let m = finish_main(mb, b);
        let expect = input_words(3, 8, 0, 50)[0];
        assert_eq!(run_module(&m, &[-7, 3]).unwrap().ret, 7 + expect);
        assert_eq!(run_module(&m, &[4, 9]).unwrap().ret, 4 + expect);
    }
}
