//! Automotive/industrial benchmarks: `basicmath`, `bitcnts`, `qsort`,
//! `susan_s`, `susan_c`, `susan_e`.

use crate::kernels::*;
use portopt_ir::{FuncBuilder, Module, ModuleBuilder, Operand, Pred};

/// `basicmath` — cubic roots and integer square roots via Newton iteration.
///
/// Dominated by long-latency divide sequences that no Figure 3 flag can
/// remove: the paper's "library-bound" flat case (Figure 4 shows ~1.0x).
pub fn basicmath(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("basicmath");
    let n: i64 = 600;
    let vals = rand_global(&mut mb, "vals", n as u32, seed, 1, 1 << 26);

    let mut b = FuncBuilder::new("main", 0);
    let pv = b.iconst(vals as i64);
    let acc = b.iconst(0);
    b.counted_loop(0, n, 1, |b, i| {
        let x = load_idx(b, pv, i);
        // isqrt by Newton: r = (r + x/r)/2, 8 iterations.
        let r = b.fresh();
        b.assign(r, 1 << 13);
        b.counted_loop(0, 8, 1, |b, _| {
            let q = b.div(x, r);
            let s = b.add(r, q);
            let half = b.sar(s, 1);
            b.assign(r, half);
        });
        // Cubic residue.
        let r2 = b.mul(r, r);
        let r3 = b.mul(r2, r);
        let diff0 = b.sub(r3, x);
        let diff = emit_abs(b, diff0);
        let scaled = b.rem(diff, 9973);
        let t = b.add(acc, scaled);
        let t2 = b.add(t, r);
        b.assign(acc, t2);
    });
    b.ret(acc);
    finish_main(mb, b)
}

/// `bitcnts` — bit-counting through a dispatch over four tiny leaf
/// functions: the inlining benchmark.
pub fn bitcnts(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("bitcnts");
    let n: i64 = 2500;
    let vals = rand_global(&mut mb, "vals", n as u32, seed, 0, i64::MAX / 2);

    // Four counting strategies, all small leaves.
    let cnt_shift = {
        let mut b = FuncBuilder::new("cnt_shift", 1);
        let x = b.fresh();
        b.assign(x, b.param(0));
        let c = b.iconst(0);
        b.counted_loop(0, 16, 1, |b, _| {
            let bit = b.and(x, 1);
            let t = b.add(c, bit);
            b.assign(c, t);
            let s = b.shr(x, 1);
            b.assign(x, s);
        });
        b.ret(c);
        mb.add(b.finish())
    };
    let cnt_kernighan = {
        let mut b = FuncBuilder::new("cnt_kernighan", 1);
        let x = b.fresh();
        b.assign(x, b.param(0));
        let c = b.iconst(0);
        b.while_loop(
            |b| b.cmp(Pred::Ne, x, 0),
            |b| {
                let xm1 = b.sub(x, 1);
                let nx = b.and(x, xm1);
                b.assign(x, nx);
                let t = b.add(c, 1);
                b.assign(c, t);
            },
        );
        b.ret(c);
        mb.add(b.finish())
    };
    let cnt_nibble = {
        let mut b = FuncBuilder::new("cnt_nibble", 1);
        let x = b.param(0);
        let lo = b.and(x, 0x5555_5555);
        let hi0 = b.shr(x, 1);
        let hi = b.and(hi0, 0x5555_5555);
        let s = b.add(lo, hi);
        let m = b.rem(s, 255);
        b.ret(m);
        mb.add(b.finish())
    };
    let cnt_parity = {
        let mut b = FuncBuilder::new("cnt_parity", 1);
        let x = b.param(0);
        let a = b.shr(x, 16);
        let x1 = b.xor(x, a);
        let c = b.shr(x1, 8);
        let x2 = b.xor(x1, c);
        let m = b.and(x2, 0xFF);
        b.ret(m);
        mb.add(b.finish())
    };

    let mut b = FuncBuilder::new("main", 0);
    let pv = b.iconst(vals as i64);
    let acc = b.iconst(0);
    b.counted_loop(0, n, 1, |b, i| {
        let x = load_idx(b, pv, i);
        let strategy = b.and(i, 3);
        let r = b.fresh();
        let is0 = b.cmp(Pred::Eq, strategy, 0);
        b.if_else(
            is0,
            |b| {
                let v = b.call(cnt_shift, &[x.into()]);
                b.assign(r, v);
            },
            |b| {
                let is1 = b.cmp(Pred::Eq, strategy, 1);
                b.if_else(
                    is1,
                    |b| {
                        let v = b.call(cnt_kernighan, &[x.into()]);
                        b.assign(r, v);
                    },
                    |b| {
                        let is2 = b.cmp(Pred::Eq, strategy, 2);
                        b.if_else(
                            is2,
                            |b| {
                                let v = b.call(cnt_nibble, &[x.into()]);
                                b.assign(r, v);
                            },
                            |b| {
                                let v = b.call(cnt_parity, &[x.into()]);
                                b.assign(r, v);
                            },
                        );
                    },
                );
            },
        );
        let t = b.add(acc, r);
        b.assign(acc, t);
    });
    b.ret(acc);
    finish_main(mb, b)
}

/// `qsort` — recursive quicksort (insertion sort below 8 elements).
///
/// Data-dependent compare branches dominate; the paper reports essentially
/// no headroom for flag selection here.
pub fn qsort(seed: u64) -> Module {
    let mut mb = ModuleBuilder::new("qsort");
    let n: i64 = 900;
    let data = rand_global(&mut mb, "data", n as u32, seed, -100_000, 100_000);

    let qs = mb.declare("quicksort", 3); // (base, lo, hi)
    {
        let mut b = FuncBuilder::new("quicksort", 3);
        let (base, lo, hi) = (b.param(0), b.param(1), b.param(2));
        let span = b.sub(hi, lo);
        let small = b.cmp(Pred::Lt, span, 8);
        let done = b.block();
        let ins = b.block();
        let rec = b.block();
        b.cond_br(small, ins, rec);

        // Insertion sort for small partitions.
        b.switch_to(ins);
        let i = b.fresh();
        let lo1 = b.add(lo, 1);
        b.assign(i, lo1);
        b.while_loop(
            |b| b.cmp(Pred::Le, i, hi),
            |b| {
                let key = load_idx(b, base, i);
                let j = b.fresh();
                let im1 = b.sub(i, 1);
                b.assign(j, im1);
                b.while_loop(
                    |b| {
                        let ge = b.cmp(Pred::Ge, j, lo);
                        let out = b.fresh();
                        b.if_else(
                            ge,
                            |b| {
                                let v = load_idx(b, base, j);
                                let gt = b.cmp(Pred::Gt, v, key);
                                b.assign(out, gt);
                            },
                            |b| b.assign(out, 0),
                        );
                        out
                    },
                    |b| {
                        let v = load_idx(b, base, j);
                        let j1 = b.add(j, 1);
                        store_idx(b, base, j1, v);
                        let jm = b.sub(j, 1);
                        b.assign(j, jm);
                    },
                );
                let j1 = b.add(j, 1);
                store_idx(b, base, j1, key);
                let i1 = b.add(i, 1);
                b.assign(i, i1);
            },
        );
        b.br(done);

        // Partition + recurse.
        b.switch_to(rec);
        let mid0 = b.add(lo, hi);
        let mid = b.sar(mid0, 1);
        let pivot = load_idx(&mut b, base, mid);
        let l = b.fresh();
        b.assign(l, lo);
        let r = b.fresh();
        b.assign(r, hi);
        b.while_loop(
            |b| b.cmp(Pred::Le, l, r),
            |b| {
                b.while_loop(
                    |b| {
                        let v = load_idx(b, base, l);
                        b.cmp(Pred::Lt, v, pivot)
                    },
                    |b| {
                        let l1 = b.add(l, 1);
                        b.assign(l, l1);
                    },
                );
                b.while_loop(
                    |b| {
                        let v = load_idx(b, base, r);
                        b.cmp(Pred::Gt, v, pivot)
                    },
                    |b| {
                        let r1 = b.sub(r, 1);
                        b.assign(r, r1);
                    },
                );
                let le = b.cmp(Pred::Le, l, r);
                b.if_then(le, |b| {
                    let vl = load_idx(b, base, l);
                    let vr = load_idx(b, base, r);
                    store_idx(b, base, l, vr);
                    store_idx(b, base, r, vl);
                    let l1 = b.add(l, 1);
                    b.assign(l, l1);
                    let r1 = b.sub(r, 1);
                    b.assign(r, r1);
                });
            },
        );
        b.call_void(qs, &[base.into(), lo.into(), r.into()]);
        // Second recursion in tail position (sibling-call target).
        b.call_void(qs, &[base.into(), l.into(), hi.into()]);
        b.br(done);

        b.switch_to(done);
        b.ret_void();
        mb.define(qs, b.finish());
    }

    let mut b = FuncBuilder::new("main", 0);
    let pd = b.iconst(data as i64);
    b.call_void(qs, &[pd.into(), Operand::Imm(0), Operand::Imm(n - 1)]);
    // Verify sortedness into the checksum.
    let acc = b.iconst(0);
    b.counted_loop(0, n - 1, 1, |b, i| {
        let a = load_idx(b, pd, i);
        let i1 = b.add(i, 1);
        let c = load_idx(b, pd, i1);
        let ok = b.cmp(Pred::Le, a, c);
        let t = b.add(acc, ok);
        b.assign(acc, t);
    });
    b.ret(acc);
    finish_main(mb, b)
}

/// SUSAN-style image kernel shared by the three variants.
fn susan(name: &str, seed: u64, mode: u8) -> Module {
    let mut mb = ModuleBuilder::new(name);
    let (w, h): (i64, i64) = (64, 48);
    let img = rand_global(&mut mb, "img", (w * h) as u32, seed, 0, 256);
    let (_, out_base) = mb.global("out", (w * h) as u32);

    let mut b = FuncBuilder::new("main", 0);
    let pi = b.iconst(img as i64);
    let po = b.iconst(out_base as i64);
    let acc = b.iconst(0);
    b.counted_loop(1, h - 1, 1, |b, y| {
        b.counted_loop(1, w - 1, 1, |b, x| {
            let row = b.mul(y, w);
            let centre_idx = b.add(row, x);
            let centre = load_idx(b, pi, centre_idx);
            let sum = b.fresh();
            b.assign(sum, 0);
            let count = b.fresh();
            b.assign(count, 0);
            // 3x3 window, statically unrolled in the source (like SUSAN's
            // hand-tuned masks).
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let nrow = b.add(row, dy * w);
                    let nidx0 = b.add(nrow, x);
                    let nidx = b.add(nidx0, dx);
                    let v = load_idx(b, pi, nidx);
                    match mode {
                        0 => {
                            // Smoothing: accumulate weighted.
                            let d0 = b.sub(v, centre);
                            let d = emit_abs(b, d0);
                            let wgt = b.sub(256, d);
                            let p = b.mul(v, wgt);
                            let t = b.add(sum, p);
                            b.assign(sum, t);
                            let t2 = b.add(count, wgt);
                            b.assign(count, t2);
                        }
                        _ => {
                            // Corner/edge: USAN area threshold.
                            let d0 = b.sub(v, centre);
                            let d = emit_abs(b, d0);
                            let thresh = if mode == 1 { 20 } else { 40 };
                            let sim = b.cmp(Pred::Lt, d, thresh);
                            let t = b.add(count, sim);
                            b.assign(count, t);
                        }
                    }
                }
            }
            match mode {
                0 => {
                    let div = b.div(sum, count);
                    store_idx(b, po, centre_idx, div);
                    let t = b.add(acc, div);
                    b.assign(acc, t);
                }
                _ => {
                    let limit = if mode == 1 { 4 } else { 6 };
                    let is_feat = b.cmp(Pred::Lt, count, limit);
                    store_idx(b, po, centre_idx, is_feat);
                    let t = b.add(acc, is_feat);
                    b.assign(acc, t);
                }
            }
        });
    });
    b.ret(acc);
    finish_main(mb, b)
}

/// `susan_s` — SUSAN smoothing (weighted window average).
pub fn susan_s(seed: u64) -> Module {
    susan("susan_s", seed, 0)
}

/// `susan_c` — SUSAN corner detection.
pub fn susan_c(seed: u64) -> Module {
    susan("susan_c", seed, 1)
}

/// `susan_e` — SUSAN edge detection.
pub fn susan_e(seed: u64) -> Module {
    susan("susan_e", seed, 2)
}
