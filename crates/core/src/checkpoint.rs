//! Resumable in-shard sweep checkpoints: a versioned append-only journal
//! of completed `(program, setting)` results.
//!
//! The profile cache (`portopt_exec::cache`) already makes a *restarted*
//! sweep cheap — profiling runs are reused — but a restart still re-prices
//! every pair from its cached profile. A [`CheckpointJournal`] removes
//! even that: as the sweep completes a pair it appends the finished cycle
//! row to a journal next to the output file, and a restart with identical
//! flags replays the journal and skips the finished work entirely. The
//! resumed dataset is **byte-identical** to an uninterrupted run (the
//! float encoding round-trips exactly; `canonical_row` handles the one
//! non-finite wrinkle), which `portopt-core`'s tests and the CI
//! crash-resume job assert end to end.
//!
//! ## Format
//!
//! One JSON document per line, in the style of the serving wire protocol:
//!
//! ```text
//! {"magic":"portopt-sweep-journal","format_version":1,"plan":"<16 hex>"}
//! {"Baseline":{"p":0,"o3":[...],"features":[{"values":[...]},...]}}
//! {"Pair":{"p":0,"t":3,"row":[...]}}
//! ...
//! ```
//!
//! The header is validated *before* any record is replayed — wrong magic,
//! a future format version, or a `plan` fingerprint that does not match
//! the current invocation's programs/options each raise their own
//! [`JournalError`], exactly like `DiskCache`'s envelope checks. The plan
//! fingerprint covers the program modules, both sampled axes and the
//! profiling limits, so a journal can never leak rows into a sweep with
//! different flags.
//!
//! ## Crash safety
//!
//! Records are appended one flushed line at a time, so the only damage a
//! `SIGKILL` can do is a **torn tail**: a final line without its
//! newline, or a truncated record. [`CheckpointJournal::open`] replays
//! the longest valid prefix, truncates the rest in place (self-healing,
//! counted in [`CheckpointJournal::healed_bytes`]), and resumes appending
//! after it. A failure to *append* during the sweep is logged and
//! swallowed — checkpointing degrades resumability, never correctness.

use portopt_uarch::FeatureVec;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The `magic` field of every journal header; anything else is not one.
pub const JOURNAL_MAGIC: &str = "portopt-sweep-journal";

/// Current journal format version. Bump on any change to the header or
/// record layout.
pub const JOURNAL_FORMAT_VERSION: u32 = 1;

/// Self-describing first line of every journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct JournalHeader {
    /// Always [`JOURNAL_MAGIC`].
    magic: String,
    /// [`JOURNAL_FORMAT_VERSION`] at write time.
    format_version: u32,
    /// Hex fingerprint of the sweep plan this journal belongs to.
    plan: String,
}

/// One checkpointed result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Record {
    /// A completed `(program, unique-setting)` pricing: cycles per
    /// microarchitecture.
    Pair {
        /// Program index within this sweep's program list.
        p: usize,
        /// Unique-setting index (post-dedup) within the sampled settings.
        t: usize,
        /// `row[u]`: cycles on microarchitecture `u`.
        row: Vec<f64>,
    },
    /// A completed `-O3` baseline for one program.
    Baseline {
        /// Program index within this sweep's program list.
        p: usize,
        /// Baseline cycles per microarchitecture.
        o3: Vec<f64>,
        /// The per-microarchitecture feature vectors.
        features: Vec<FeatureVec>,
    },
}

/// Why a journal (not a record — bad records self-heal) was refused.
#[derive(Debug)]
pub enum JournalError {
    /// The journal could not be read, created or truncated.
    Io(std::io::Error),
    /// The header line is complete but not parseable as a journal header.
    Corrupt(String),
    /// The header parses but its `magic` field is wrong — some other
    /// JSON-lines file sits at the journal path.
    NotAJournal {
        /// The magic actually found.
        found: String,
    },
    /// The journal was written by an incompatible format version.
    VersionMismatch {
        /// Version in the file.
        found: u32,
        /// Version this binary supports.
        supported: u32,
    },
    /// The journal belongs to a different sweep plan: other programs,
    /// scale, seed, space, or profiling limits. Resuming it here would
    /// splice foreign rows into this sweep, so it is refused loudly.
    PlanMismatch {
        /// Plan fingerprint recorded in the journal.
        found: String,
        /// Plan fingerprint of the current invocation.
        expected: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::Corrupt(msg) => write!(f, "corrupt journal header: {msg}"),
            JournalError::NotAJournal { found } => {
                write!(f, "not a portopt sweep journal (magic `{found}`)")
            }
            JournalError::VersionMismatch { found, supported } => write!(
                f,
                "journal format version {found} is not supported \
                 (this binary reads version {supported})"
            ),
            JournalError::PlanMismatch { found, expected } => write!(
                f,
                "journal was written by a different sweep plan ({found}, this \
                 invocation is {expected}): flags, suite or limits changed — \
                 delete the journal or restore the original flags"
            ),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Restores the exact in-memory value of a journalled cycle row. JSON has
/// no `Infinity`, so the serializer writes non-finite cycles (a failed
/// binary is priced `f64::INFINITY` everywhere) as `null`, which parses
/// back as NaN. The sweep itself never produces NaN cycles, so mapping
/// every non-finite value back to `INFINITY` makes replay exact — both in
/// the serialized dataset (where the same `null` lossiness applies
/// anyway) and in memory.
fn canonical_row(row: Vec<f64>) -> Vec<f64> {
    row.into_iter()
        .map(|v| if v.is_finite() { v } else { f64::INFINITY })
        .collect()
}

/// An open checkpoint journal: the replayed state of a previous attempt
/// plus an append handle for this one. See the [module docs](self).
///
/// Shared by the sweep's worker threads (`&self` everywhere); appends are
/// serialized by an internal lock and flushed per record.
#[derive(Debug)]
pub struct CheckpointJournal {
    path: PathBuf,
    writer: Mutex<std::fs::File>,
    pairs: HashMap<(usize, usize), Arc<Vec<f64>>>,
    baselines: HashMap<usize, Arc<(Vec<f64>, Vec<FeatureVec>)>>,
    recorded: AtomicU64,
    healed_bytes: u64,
}

impl CheckpointJournal {
    /// Opens (creating if needed) the journal at `path` for the sweep plan
    /// fingerprinted by `plan`. An existing journal is validated
    /// header-first, its complete records are replayed, and a torn tail is
    /// truncated in place; the returned handle appends after the healed
    /// prefix.
    pub fn open(path: impl AsRef<Path>, plan: u64) -> Result<Self, JournalError> {
        // The replay span: on a resume this covers reading and re-pricing
        // (from disk) every previously completed record.
        let sp = portopt_trace::span("core.checkpoint", "journal_open", &[]);
        let path = path.as_ref().to_path_buf();
        let plan_hex = format!("{plan:016x}");
        let mut pairs = HashMap::new();
        let mut baselines = HashMap::new();
        let mut healed_bytes = 0u64;

        let existing = match std::fs::read(&path) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(JournalError::Io(e)),
        };
        let mut fresh = existing.is_none();
        if let Some(bytes) = existing {
            // Walk complete (newline-terminated) lines, tracking how many
            // bytes of the file are a valid prefix worth keeping.
            let mut good_len = 0usize;
            let mut saw_header = false;
            for line in bytes.split_inclusive(|&b| b == b'\n') {
                if !line.ends_with(b"\n") {
                    break; // torn tail: a record cut mid-write
                }
                if !saw_header {
                    match Self::parse_header(line) {
                        Ok(header) => {
                            Self::validate_header(&header, &plan_hex)?;
                            saw_header = true;
                            good_len += line.len();
                            continue;
                        }
                        // A header line that never got its newline would
                        // have been caught above; a *complete* first line
                        // that does not parse at all is healed like a torn
                        // tail only if the file holds nothing else — an
                        // empty journal from a crash at creation time.
                        Err(e) => {
                            if bytes.len() == line.len() {
                                break;
                            }
                            return Err(e);
                        }
                    }
                }
                match serde_json::from_slice::<Record>(line) {
                    Ok(Record::Pair { p, t, row }) => {
                        pairs.insert((p, t), Arc::new(canonical_row(row)));
                        good_len += line.len();
                    }
                    Ok(Record::Baseline { p, o3, features }) => {
                        baselines.insert(p, Arc::new((o3, features)));
                        good_len += line.len();
                    }
                    // A record that parses no further: keep the prefix,
                    // drop this line and everything after it.
                    Err(_) => break,
                }
            }
            healed_bytes = (bytes.len() - good_len) as u64;
            if healed_bytes > 0 {
                let f = std::fs::File::options().write(true).open(&path)?;
                f.set_len(good_len as u64)?;
            }
            fresh = !saw_header;
        }

        let mut writer = std::fs::File::options()
            .create(true)
            .append(true)
            .open(&path)?;
        if fresh {
            let header = JournalHeader {
                magic: JOURNAL_MAGIC.to_string(),
                format_version: JOURNAL_FORMAT_VERSION,
                plan: plan_hex,
            };
            let mut line =
                serde_json::to_string(&header).map_err(|e| JournalError::Corrupt(e.to_string()))?;
            line.push('\n');
            writer.write_all(line.as_bytes())?;
            writer.flush()?;
        }
        sp.close_with(&[
            ("resumed_pairs", pairs.len().into()),
            ("resumed_baselines", baselines.len().into()),
            ("healed_bytes", healed_bytes.into()),
        ]);
        Ok(CheckpointJournal {
            path,
            writer: Mutex::new(writer),
            pairs,
            baselines,
            recorded: AtomicU64::new(0),
            healed_bytes,
        })
    }

    fn parse_header(line: &[u8]) -> Result<JournalHeader, JournalError> {
        serde_json::from_slice::<JournalHeader>(line)
            .map_err(|e| JournalError::Corrupt(e.to_string()))
    }

    fn validate_header(header: &JournalHeader, plan_hex: &str) -> Result<(), JournalError> {
        if header.magic != JOURNAL_MAGIC {
            return Err(JournalError::NotAJournal {
                found: header.magic.clone(),
            });
        }
        if header.format_version != JOURNAL_FORMAT_VERSION {
            return Err(JournalError::VersionMismatch {
                found: header.format_version,
                supported: JOURNAL_FORMAT_VERSION,
            });
        }
        if header.plan != plan_hex {
            return Err(JournalError::PlanMismatch {
                found: header.plan.clone(),
                expected: plan_hex.to_string(),
            });
        }
        Ok(())
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of completed `(program, setting)` pairs replayed from a
    /// previous attempt — the pairs this run will *not* re-price.
    pub fn resumed_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Number of `-O3` baselines replayed from a previous attempt.
    pub fn resumed_baselines(&self) -> usize {
        self.baselines.len()
    }

    /// Records appended by *this* run so far (pairs + baselines).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Bytes of torn tail truncated while opening (0 for a clean journal).
    pub fn healed_bytes(&self) -> u64 {
        self.healed_bytes
    }

    /// The replayed cycle row for `(program, unique-setting)`, if that
    /// pair completed in a previous attempt.
    pub(crate) fn replayed_pair(&self, p: usize, t: usize) -> Option<Arc<Vec<f64>>> {
        self.pairs.get(&(p, t)).cloned()
    }

    /// The replayed baseline for program `p`, if it completed previously.
    pub(crate) fn replayed_baseline(&self, p: usize) -> Option<(Vec<f64>, Vec<FeatureVec>)> {
        self.baselines.get(&p).map(|b| (b.0.clone(), b.1.clone()))
    }

    /// Appends a completed pair. Failures are logged, not fatal: a sweep
    /// that cannot checkpoint still completes, it just cannot resume.
    pub(crate) fn record_pair(&self, p: usize, t: usize, row: &[f64]) {
        self.append(&Record::Pair {
            p,
            t,
            row: row.to_vec(),
        });
    }

    /// Appends a completed baseline (same failure contract as pairs).
    pub(crate) fn record_baseline(&self, p: usize, o3: &[f64], features: &[FeatureVec]) {
        self.append(&Record::Baseline {
            p,
            o3: o3.to_vec(),
            features: features.to_vec(),
        });
    }

    fn append(&self, record: &Record) {
        let mut line = match serde_json::to_string(record) {
            Ok(s) => s,
            Err(e) => {
                portopt_trace::error!("core.checkpoint", "checkpoint record not serializable: {e}");
                return;
            }
        };
        line.push('\n');
        let mut writer = self.writer.lock().expect("journal writer");
        if let Err(e) = writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.flush())
        {
            portopt_trace::warn!(
                "core.checkpoint",
                "checkpoint append to {} failed: {e} (sweep continues, resume disabled)",
                self.path.display()
            );
            return;
        }
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Deletes the journal — call after the final dataset has been
    /// published, at which point the dataset itself is the durable
    /// artifact and the journal is spent.
    pub fn retire(self) -> std::io::Result<()> {
        drop(self.writer);
        std::fs::remove_file(&self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("portopt-journal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("sweep.journal")
    }

    fn feature(values: &[f64]) -> FeatureVec {
        FeatureVec {
            values: values.to_vec(),
        }
    }

    #[test]
    fn fresh_journal_records_and_replays() {
        let path = scratch("fresh");
        let j = CheckpointJournal::open(&path, 0xABCD).unwrap();
        assert_eq!(j.resumed_pairs(), 0);
        assert_eq!(j.healed_bytes(), 0);
        j.record_pair(0, 1, &[10.0, 20.5]);
        j.record_pair(1, 0, &[1.0, f64::INFINITY]);
        j.record_baseline(0, &[5.0], &[feature(&[1.0, 2.0])]);
        assert_eq!(j.recorded(), 3);
        drop(j);

        let j2 = CheckpointJournal::open(&path, 0xABCD).unwrap();
        assert_eq!(j2.resumed_pairs(), 2);
        assert_eq!(j2.resumed_baselines(), 1);
        assert_eq!(*j2.replayed_pair(0, 1).unwrap(), vec![10.0, 20.5]);
        // Non-finite cycles survive the JSON round-trip as INFINITY.
        assert_eq!(*j2.replayed_pair(1, 0).unwrap(), vec![1.0, f64::INFINITY]);
        assert_eq!(j2.replayed_pair(2, 0), None);
        let (o3, feats) = j2.replayed_baseline(0).unwrap();
        assert_eq!(o3, vec![5.0]);
        assert_eq!(feats, vec![feature(&[1.0, 2.0])]);
        j2.retire().unwrap();
        assert!(!path.exists());
    }

    #[test]
    fn torn_tail_is_truncated_and_appending_resumes() {
        let path = scratch("torn");
        let j = CheckpointJournal::open(&path, 7).unwrap();
        j.record_pair(0, 0, &[1.0]);
        j.record_pair(0, 1, &[2.0]);
        drop(j);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // A SIGKILL mid-append: half a record, no newline.
        let mut f = std::fs::File::options().append(true).open(&path).unwrap();
        f.write_all(b"{\"Pair\":{\"p\":0,\"t\":2,\"ro").unwrap();
        drop(f);

        let j2 = CheckpointJournal::open(&path, 7).unwrap();
        assert_eq!(j2.resumed_pairs(), 2, "complete prefix replayed");
        assert!(j2.healed_bytes() > 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        // The healed journal keeps working.
        j2.record_pair(0, 2, &[3.0]);
        drop(j2);
        let j3 = CheckpointJournal::open(&path, 7).unwrap();
        assert_eq!(j3.resumed_pairs(), 3);
        assert_eq!(j3.healed_bytes(), 0);
    }

    #[test]
    fn corrupt_mid_file_record_drops_the_suffix() {
        let path = scratch("midfile");
        let j = CheckpointJournal::open(&path, 7).unwrap();
        j.record_pair(0, 0, &[1.0]);
        j.record_pair(0, 1, &[2.0]);
        j.record_pair(0, 2, &[3.0]);
        drop(j);
        // Vandalise the middle record (keeping its length and newline):
        // replay must keep the prefix and discard from the bad line on.
        let text = std::fs::read_to_string(&path).unwrap();
        let vandalised = text.replacen(
            "{\"Pair\":{\"p\":0,\"t\":1",
            "{\"Pair\":{\"p\":x,\"t\":1",
            1,
        );
        assert_ne!(text, vandalised);
        std::fs::write(&path, vandalised).unwrap();

        let j2 = CheckpointJournal::open(&path, 7).unwrap();
        assert_eq!(j2.resumed_pairs(), 1, "only the record before the damage");
        assert!(j2.replayed_pair(0, 0).is_some());
        assert!(
            j2.replayed_pair(0, 2).is_none(),
            "suffix after damage dropped"
        );
        assert!(j2.healed_bytes() > 0);
    }

    #[test]
    fn header_mismatches_are_typed() {
        let path = scratch("typed");
        drop(CheckpointJournal::open(&path, 1).unwrap());
        match CheckpointJournal::open(&path, 2) {
            Err(JournalError::PlanMismatch { found, expected }) => {
                assert_eq!(found, format!("{:016x}", 1));
                assert_eq!(expected, format!("{:016x}", 2));
            }
            other => panic!("expected PlanMismatch, got {other:?}"),
        }

        std::fs::write(
            &path,
            "{\"magic\":\"portopt-sweep-journal\",\"format_version\":99,\"plan\":\"0000000000000001\"}\n",
        )
        .unwrap();
        match CheckpointJournal::open(&path, 1) {
            Err(JournalError::VersionMismatch { found: 99, .. }) => {}
            other => panic!("expected VersionMismatch, got {other:?}"),
        }

        std::fs::write(
            &path,
            "{\"magic\":\"something-else\",\"format_version\":1,\"plan\":\"0000000000000001\"}\n",
        )
        .unwrap();
        match CheckpointJournal::open(&path, 1) {
            Err(JournalError::NotAJournal { found }) => assert_eq!(found, "something-else"),
            other => panic!("expected NotAJournal, got {other:?}"),
        }

        // A complete but unparseable header in a multi-line file is not
        // healable — refusing beats silently discarding real records.
        std::fs::write(
            &path,
            "{ not json\n{\"Pair\":{\"p\":0,\"t\":0,\"row\":[1.0]}}\n",
        )
        .unwrap();
        match CheckpointJournal::open(&path, 1) {
            Err(JournalError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn crash_at_creation_time_heals_to_fresh() {
        let path = scratch("creation");
        // Torn header: no newline ever made it to disk.
        std::fs::write(&path, "{\"magic\":\"portopt-swee").unwrap();
        let j = CheckpointJournal::open(&path, 5).unwrap();
        assert_eq!(j.resumed_pairs(), 0);
        assert!(j.healed_bytes() > 0);
        j.record_pair(0, 0, &[4.0]);
        drop(j);
        let j2 = CheckpointJournal::open(&path, 5).unwrap();
        assert_eq!(j2.resumed_pairs(), 1);

        // An empty file (created, never written) also heals to fresh.
        let empty = scratch("creation-empty");
        std::fs::write(&empty, b"").unwrap();
        let j3 = CheckpointJournal::open(&empty, 5).unwrap();
        assert_eq!(j3.resumed_pairs(), 0);
    }

    #[test]
    fn errors_display_usefully() {
        let e = JournalError::PlanMismatch {
            found: "aa".into(),
            expected: "bb".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("different sweep plan"), "{msg}");
        assert!(msg.contains("delete the journal"), "{msg}");
        assert!(JournalError::NotAJournal { found: "x".into() }
            .to_string()
            .contains("not a portopt sweep journal"));
    }
}
