//! # portopt-core
//!
//! The primary contribution of Dubach et al. (MICRO 2009): a **portable
//! optimising compiler** that, given a microarchitecture description and
//! the performance counters from a single `-O3` run of a program, predicts
//! the compiler optimisation passes that maximise its performance — for
//! programs *and* microarchitectures never seen in training.
//!
//! * [`dataset`] — training-data generation (§3.2): the
//!   programs × settings × microarchitectures sweep, optionally backed by
//!   an on-disk profile cache (`portopt_exec::cache`) so repeated sweeps
//!   reuse profiling runs across process invocations.
//! * [`checkpoint`] — resumable in-shard checkpoints: a versioned
//!   append-only journal of completed `(program, setting)` results, so a
//!   sweep killed mid-shard resumes without re-pricing finished work and
//!   still produces a byte-identical dataset.
//! * [`shard`] — deterministic multi-rig sweep planning: contiguous
//!   program slices whose per-rig datasets recombine, byte-identically,
//!   with [`Dataset::merge`].
//! * [`compiler`] — model building (§3.3) and deployment (§3.4):
//!   [`PortableCompiler`] wraps good-set extraction, per-pair IID
//!   distribution fitting, and the KNN predictive distribution, decoded at
//!   its mode.
//!
//! The leave-one-out evaluation harness and every figure of the paper live
//! in `portopt-experiments`.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod compiler;
pub mod dataset;
pub mod shard;

pub use checkpoint::{CheckpointJournal, JournalError, JOURNAL_FORMAT_VERSION, JOURNAL_MAGIC};
pub use compiler::{PortableCompiler, TrainOptions, GOOD_FRACTION};
pub use dataset::{
    generate, generate_with_cache, generate_with_checkpoint, generate_with_report,
    generate_with_uarchs, open_profile_cache, open_sweep_journal, plan_fingerprint, sweep_program,
    CachedProfile, Dataset, GenOptions, MergeError, SweepReport, SweepScale, PROFILE_CACHE_KIND,
    PROFILE_CACHE_PAYLOAD_VERSION,
};
pub use portopt_ml::{Model, ModelKind, ModelOptions};
pub use shard::{ShardError, ShardSpec};
