//! # portopt-core
//!
//! The primary contribution of Dubach et al. (MICRO 2009): a **portable
//! optimising compiler** that, given a microarchitecture description and
//! the performance counters from a single `-O3` run of a program, predicts
//! the compiler optimisation passes that maximise its performance — for
//! programs *and* microarchitectures never seen in training.
//!
//! * [`dataset`] — training-data generation (§3.2): the
//!   programs × settings × microarchitectures sweep.
//! * [`compiler`] — model building (§3.3) and deployment (§3.4):
//!   [`PortableCompiler`] wraps good-set extraction, per-pair IID
//!   distribution fitting, and the KNN predictive distribution, decoded at
//!   its mode.
//!
//! The leave-one-out evaluation harness and every figure of the paper live
//! in `portopt-experiments`.

#![warn(missing_docs)]

pub mod compiler;
pub mod dataset;

pub use compiler::{PortableCompiler, TrainOptions, GOOD_FRACTION};
pub use dataset::{
    generate, generate_with_report, generate_with_uarchs, sweep_program, Dataset, GenOptions,
    MergeError, SweepReport, SweepScale,
};
