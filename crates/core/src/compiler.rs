//! The portable optimising compiler (Figure 2): train once off-line, then
//! compile any new program for any new microarchitecture using one `-O3`
//! profiling run.

use crate::dataset::Dataset;
use portopt_ir::interp::ExecLimits;
use portopt_ir::Module;
use portopt_ml::{IidDistribution, KnnModel, TrainError, DEFAULT_BETA, DEFAULT_K};
use portopt_passes::{compile, CodeImage, OptConfig, OptSpace};
use portopt_sim::{evaluate, profile, TimingResult};
use portopt_uarch::{FeatureVec, MicroArch, PerfCounters};
use serde::{Deserialize, Serialize};

/// The fraction of sampled settings considered "good" (paper: top 5 %).
pub const GOOD_FRACTION: f64 = 0.05;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Neighbour count (paper: 7).
    pub k: usize,
    /// Softmax inverse temperature (paper: 1).
    pub beta: f64,
    /// Good-set fraction (paper: 0.05).
    pub good_fraction: f64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            k: DEFAULT_K,
            beta: DEFAULT_BETA,
            good_fraction: GOOD_FRACTION,
        }
    }
}

/// A trained portable optimising compiler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortableCompiler {
    model: KnnModel,
}

impl PortableCompiler {
    /// Trains on every pair of `ds`, excluding program `skip_prog` and
    /// configuration `skip_uarch` when given — the leave-one-out protocol
    /// of §5.1.1 (the test program and test microarchitecture are *never*
    /// in the training set).
    pub fn train(
        ds: &Dataset,
        skip_prog: Option<usize>,
        skip_uarch: Option<usize>,
        opts: &TrainOptions,
    ) -> Self {
        match Self::try_train(ds, skip_prog, skip_uarch, opts) {
            Ok(pc) => pc,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`train`](Self::train) with malformed input reported as a typed
    /// error instead of a panic — the entry point for operator-facing
    /// tools (the `snapshot` bin) where "the dataset had no usable pairs"
    /// must be a diagnostic, not a crash. The only realistic failure here
    /// is [`TrainError::Empty`]: skipping the last program/uarch of a
    /// minimal dataset can leave zero training pairs.
    pub fn try_train(
        ds: &Dataset,
        skip_prog: Option<usize>,
        skip_uarch: Option<usize>,
        opts: &TrainOptions,
    ) -> Result<Self, TrainError> {
        let dims: Vec<usize> = OptSpace::dims().iter().map(|d| d.cardinality).collect();
        let mut features = Vec::new();
        let mut dists = Vec::new();
        for p in 0..ds.n_programs() {
            if Some(p) == skip_prog {
                continue;
            }
            for u in 0..ds.n_uarchs() {
                if Some(u) == skip_uarch {
                    continue;
                }
                let good: Vec<Vec<u8>> = ds
                    .good_set(p, u, opts.good_fraction)
                    .into_iter()
                    .map(|c| ds.configs[c].to_choices())
                    .collect();
                dists.push(IidDistribution::fit(&dims, &good));
                features.push(ds.features[p][u].values.clone());
            }
        }
        Ok(PortableCompiler {
            model: KnnModel::try_train(features, dists, opts.k, opts.beta)?,
        })
    }

    /// Predicts the best optimisation setting from a feature vector.
    pub fn predict(&self, x: &FeatureVec) -> OptConfig {
        self.predict_features(&x.values)
    }

    /// Predicts from raw feature values — [`predict`](Self::predict)
    /// without wrapping the slice in a `FeatureVec` (the serving hot path
    /// calls this straight off the decoded request, clone-free).
    pub fn predict_features(&self, values: &[f64]) -> OptConfig {
        OptConfig::from_choices(&self.model.predict_mode(values))
    }

    /// [`predict_features`](Self::predict_features), also handing back the
    /// canonical choice vector the prediction was decoded from. The serve
    /// reply carries both representations; computing them in one pass
    /// spares the hot path a round trip through
    /// `OptConfig::to_choices` per request.
    pub fn predict_features_choices(&self, values: &[f64]) -> (OptConfig, Vec<u8>) {
        let choices = self.model.predict_mode(values);
        (OptConfig::from_choices(&choices), choices)
    }

    /// Predicts from counters + microarchitecture description (the two
    /// extra inputs of Figure 2).
    pub fn predict_from_counters(&self, c: &PerfCounters, d: &MicroArch) -> OptConfig {
        self.predict(&FeatureVec::new(c, d))
    }

    /// The full Figure 2 deployment flow for a new program on a new
    /// microarchitecture: one `-O3` profiling run to read the counters,
    /// one prediction, one recompilation.
    ///
    /// Returns the optimised image, the predicted setting, and the timing
    /// of the profiling run (whose counters fed the prediction).
    pub fn optimise(
        &self,
        module: &Module,
        target: &MicroArch,
    ) -> (CodeImage, OptConfig, TimingResult) {
        let limits = ExecLimits {
            fuel: 100_000_000,
            max_depth: 2048,
        };
        let img3 = compile(module, &OptConfig::o3());
        let prof3 = profile(&img3, module, &[], limits).expect("O3 run");
        let t3 = evaluate(&img3, &prof3, target);
        let cfg = self.predict_from_counters(&t3.counters, target);
        (compile(module, &cfg), cfg, t3)
    }

    /// Access to the underlying KNN model (for analysis).
    pub fn model(&self) -> &KnnModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate, GenOptions, SweepScale};
    use portopt_ir::{FuncBuilder, ModuleBuilder};

    fn program(name: &str, mem_heavy: bool) -> (String, Module) {
        let mut mb = ModuleBuilder::new(name);
        let (_, base) = mb.global("buf", 2048);
        let mut b = FuncBuilder::new("main", 0);
        let p = b.iconst(base as i64);
        let acc = b.iconst(0);
        b.counted_loop(0, 500, 1, |b, i| {
            if mem_heavy {
                let off0 = b.mul(i, 13);
                let off = b.and(off0, 2047);
                let sh = b.shl(off, 2);
                let a = b.add(p, sh);
                let v = b.load(a, 0);
                let w = b.add(v, i);
                b.store(w, a, 0);
                let t = b.add(acc, w);
                b.assign(acc, t);
            } else {
                let sq = b.mul(i, i);
                let x = b.xor(acc, sq);
                let s = b.shl(x, 1);
                let m = b.and(s, 0xFFFF_FFFF);
                b.assign(acc, m);
            }
        });
        b.ret(acc);
        let id = mb.add(b.finish());
        mb.entry(id);
        (name.to_string(), mb.finish())
    }

    fn small_dataset() -> Dataset {
        let programs = vec![
            program("mem1", true),
            program("alu1", false),
            program("mem2", true),
            program("alu2", false),
        ];
        generate(
            &programs,
            &GenOptions {
                scale: SweepScale {
                    n_uarch: 5,
                    n_opts: 30,
                },
                seed: 11,
                extended_space: false,
                threads: 2,
            },
        )
    }

    #[test]
    fn leave_one_out_prediction_is_reasonable() {
        let ds = small_dataset();
        // Predict for (program 0, uarch 0) having never trained on either.
        let pc = PortableCompiler::train(&ds, Some(0), Some(0), &TrainOptions::default());
        let cfg = pc.predict(&ds.features[0][0]);
        // The predicted setting, evaluated via the dataset's own grid if
        // present, or fresh: just check prediction is valid and the flow
        // runs end to end.
        let choices = cfg.to_choices();
        assert_eq!(choices.len(), OptSpace::n_dims());
    }

    #[test]
    fn training_excludes_the_test_pair() {
        let ds = small_dataset();
        let full = PortableCompiler::train(&ds, None, None, &TrainOptions::default());
        let loo = PortableCompiler::train(&ds, Some(0), Some(0), &TrainOptions::default());
        assert_eq!(full.model().len(), 4 * 5);
        assert_eq!(loo.model().len(), 3 * 4);
    }

    #[test]
    fn optimise_flow_beats_or_matches_o3_on_average() {
        let ds = small_dataset();
        let pc = PortableCompiler::train(&ds, None, None, &TrainOptions::default());
        // Deploy on a program from the suite (in-sample here; the full
        // leave-one-out evaluation lives in portopt-experiments).
        let (name, module) = program("mem_eval", true);
        let _ = name;
        let target = ds.uarchs[0];
        let (img, cfg, t3) = pc.optimise(&module, &target);
        let prof = profile(
            &img,
            &module,
            &[],
            ExecLimits {
                fuel: 100_000_000,
                max_depth: 2048,
            },
        )
        .unwrap();
        let t = evaluate(&img, &prof, &target);
        // Not a strict win requirement at this scale, but the flow must be
        // coherent and within a sane band of the baseline.
        assert!(t.cycles > 0.0);
        assert!(t.cycles < t3.cycles * 2.0, "predicted config catastrophic");
        let _ = cfg;
    }

    #[test]
    fn serialization_round_trip() {
        let ds = small_dataset();
        let pc = PortableCompiler::train(&ds, None, None, &TrainOptions::default());
        let json = serde_json::to_string(&pc).unwrap();
        let back: PortableCompiler = serde_json::from_str(&json).unwrap();
        let x = &ds.features[0][0];
        assert_eq!(pc.predict(x), back.predict(x));
    }
}
