//! The portable optimising compiler (Figure 2): train once off-line, then
//! compile any new program for any new microarchitecture using one `-O3`
//! profiling run.

use crate::dataset::Dataset;
use portopt_ir::interp::ExecLimits;
use portopt_ir::Module;
use portopt_ml::{
    IidDistribution, KnnModel, Model, ModelKind, ModelOptions, TrainError, DEFAULT_BETA, DEFAULT_K,
    DEFAULT_K_CLUSTERS, DEFAULT_RIDGE_LAMBDA,
};
use portopt_passes::{compile, CodeImage, OptConfig, OptSpace};
use portopt_sim::{evaluate, profile, TimingResult};
use portopt_uarch::{FeatureVec, MicroArch, PerfCounters};
use serde::{Deserialize, Serialize, Value};

/// The fraction of sampled settings considered "good" (paper: top 5 %).
pub const GOOD_FRACTION: f64 = 0.05;

/// Training hyper-parameters, covering every model kind in the zoo (each
/// trainer reads the fields it understands).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Neighbour count (paper: 7).
    pub k: usize,
    /// Softmax inverse temperature (paper: 1).
    pub beta: f64,
    /// Good-set fraction (paper: 0.05).
    pub good_fraction: f64,
    /// Ridge penalty λ for the `linear` model kind.
    pub ridge_lambda: f64,
    /// Cluster count for the `clustered` model kind.
    pub k_clusters: usize,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            k: DEFAULT_K,
            beta: DEFAULT_BETA,
            good_fraction: GOOD_FRACTION,
            ridge_lambda: DEFAULT_RIDGE_LAMBDA,
            k_clusters: DEFAULT_K_CLUSTERS,
        }
    }
}

impl TrainOptions {
    /// The model-zoo subset of these options, in `portopt_ml`'s terms.
    pub fn model_options(&self) -> ModelOptions {
        ModelOptions {
            k: self.k,
            beta: self.beta,
            ridge_lambda: self.ridge_lambda,
            k_clusters: self.k_clusters,
        }
    }
}

/// A trained portable optimising compiler: any model from the
/// `portopt_ml` zoo behind the deployment flow of Figure 2.
#[derive(Debug, Clone)]
pub struct PortableCompiler {
    model: Box<dyn Model>,
}

// Hand-written serde: the wire shape stays `{"model": <payload>}` for the
// kNN kind — byte-identical to what the derive produced when `model` was
// a concrete `KnnModel`, so existing snapshots load as-is — and grows a
// trailing `"model_kind"` tag only for the other kinds (absent tag =
// kNN). Snapshot files additionally carry the kind in their validated
// header; this in-payload copy keeps `PortableCompiler` self-describing
// for direct serde users.
impl Serialize for PortableCompiler {
    fn to_value(&self) -> Value {
        let mut fields = vec![("model".to_string(), self.model.payload())];
        if self.model.kind() != ModelKind::Knn {
            fields.push(("model_kind".to_string(), self.model.kind().to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for PortableCompiler {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let kind = match v.field("model_kind") {
            Ok(tag) => ModelKind::from_value(tag)?,
            Err(_) => ModelKind::Knn,
        };
        Ok(PortableCompiler {
            model: portopt_ml::decode_model(kind, v.field("model")?)?,
        })
    }
}

impl PortableCompiler {
    /// Trains on every pair of `ds`, excluding program `skip_prog` and
    /// configuration `skip_uarch` when given — the leave-one-out protocol
    /// of §5.1.1 (the test program and test microarchitecture are *never*
    /// in the training set).
    pub fn train(
        ds: &Dataset,
        skip_prog: Option<usize>,
        skip_uarch: Option<usize>,
        opts: &TrainOptions,
    ) -> Self {
        match Self::try_train(ds, skip_prog, skip_uarch, opts) {
            Ok(pc) => pc,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`train`](Self::train) with malformed input reported as a typed
    /// error instead of a panic — the entry point for operator-facing
    /// tools (the `snapshot` bin) where "the dataset had no usable pairs"
    /// must be a diagnostic, not a crash. The only realistic failure here
    /// is [`TrainError::Empty`]: skipping the last program/uarch of a
    /// minimal dataset can leave zero training pairs. Trains the paper's
    /// kNN model; [`try_train_kind`](Self::try_train_kind) picks another
    /// kind from the zoo.
    pub fn try_train(
        ds: &Dataset,
        skip_prog: Option<usize>,
        skip_uarch: Option<usize>,
        opts: &TrainOptions,
    ) -> Result<Self, TrainError> {
        Self::try_train_kind(ds, skip_prog, skip_uarch, ModelKind::Knn, opts)
    }

    /// [`try_train`](Self::try_train) for any model kind in the zoo.
    pub fn try_train_kind(
        ds: &Dataset,
        skip_prog: Option<usize>,
        skip_uarch: Option<usize>,
        kind: ModelKind,
        opts: &TrainOptions,
    ) -> Result<Self, TrainError> {
        let (features, dists) = Self::training_pairs(ds, skip_prog, skip_uarch, opts.good_fraction);
        Ok(PortableCompiler {
            model: portopt_ml::try_train_kind(kind, features, dists, &opts.model_options())?,
        })
    }

    /// Wraps an already-trained model (differential tests that must
    /// compare two kinds over the same training pairs build both sides
    /// from [`training_pairs`](Self::training_pairs) and wrap them here).
    pub fn from_model(model: Box<dyn Model>) -> Self {
        PortableCompiler { model }
    }

    /// The per-pair training inputs every model kind is fitted to:
    /// features and good-set distributions in dataset order, with the
    /// leave-one-out holdouts excluded. Exposed so differential tests can
    /// train a concrete model from exactly the pairs
    /// [`try_train_kind`](Self::try_train_kind) uses.
    pub fn training_pairs(
        ds: &Dataset,
        skip_prog: Option<usize>,
        skip_uarch: Option<usize>,
        good_fraction: f64,
    ) -> (Vec<Vec<f64>>, Vec<IidDistribution>) {
        let dims: Vec<usize> = OptSpace::dims().iter().map(|d| d.cardinality).collect();
        let mut features = Vec::new();
        let mut dists = Vec::new();
        for p in 0..ds.n_programs() {
            if Some(p) == skip_prog {
                continue;
            }
            for u in 0..ds.n_uarchs() {
                if Some(u) == skip_uarch {
                    continue;
                }
                let good: Vec<Vec<u8>> = ds
                    .good_set(p, u, good_fraction)
                    .into_iter()
                    .map(|c| ds.configs[c].to_choices())
                    .collect();
                dists.push(IidDistribution::fit(&dims, &good));
                features.push(ds.features[p][u].values.clone());
            }
        }
        (features, dists)
    }

    /// Predicts the best optimisation setting from a feature vector.
    pub fn predict(&self, x: &FeatureVec) -> OptConfig {
        self.predict_features(&x.values)
    }

    /// Predicts from raw feature values — [`predict`](Self::predict)
    /// without wrapping the slice in a `FeatureVec` (the serving hot path
    /// calls this straight off the decoded request, clone-free).
    pub fn predict_features(&self, values: &[f64]) -> OptConfig {
        OptConfig::from_choices(&self.model.predict_mode(values))
    }

    /// [`predict_features`](Self::predict_features), also handing back the
    /// canonical choice vector the prediction was decoded from. The serve
    /// reply carries both representations; computing them in one pass
    /// spares the hot path a round trip through
    /// `OptConfig::to_choices` per request.
    pub fn predict_features_choices(&self, values: &[f64]) -> (OptConfig, Vec<u8>) {
        let choices = self.model.predict_mode(values);
        (OptConfig::from_choices(&choices), choices)
    }

    /// Predicts from counters + microarchitecture description (the two
    /// extra inputs of Figure 2).
    pub fn predict_from_counters(&self, c: &PerfCounters, d: &MicroArch) -> OptConfig {
        self.predict(&FeatureVec::new(c, d))
    }

    /// The full Figure 2 deployment flow for a new program on a new
    /// microarchitecture: one `-O3` profiling run to read the counters,
    /// one prediction, one recompilation.
    ///
    /// Returns the optimised image, the predicted setting, and the timing
    /// of the profiling run (whose counters fed the prediction).
    pub fn optimise(
        &self,
        module: &Module,
        target: &MicroArch,
    ) -> (CodeImage, OptConfig, TimingResult) {
        let limits = ExecLimits {
            fuel: 100_000_000,
            max_depth: 2048,
        };
        let img3 = compile(module, &OptConfig::o3());
        let prof3 = profile(&img3, module, &[], limits).expect("O3 run");
        let t3 = evaluate(&img3, &prof3, target);
        let cfg = self.predict_from_counters(&t3.counters, target);
        (compile(module, &cfg), cfg, t3)
    }

    /// Access to the underlying model (for analysis).
    pub fn model(&self) -> &dyn Model {
        self.model.as_ref()
    }

    /// The concrete kNN model, when this compiler holds one — `None` for
    /// the other kinds in the zoo. Analysis paths that need kNN-only
    /// structure (the blocked feature matrix, the oracle predictors) go
    /// through here.
    pub fn knn(&self) -> Option<&KnnModel> {
        self.model.as_any().downcast_ref::<KnnModel>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate, GenOptions, SweepScale};
    use portopt_ir::{FuncBuilder, ModuleBuilder};

    fn program(name: &str, mem_heavy: bool) -> (String, Module) {
        let mut mb = ModuleBuilder::new(name);
        let (_, base) = mb.global("buf", 2048);
        let mut b = FuncBuilder::new("main", 0);
        let p = b.iconst(base as i64);
        let acc = b.iconst(0);
        b.counted_loop(0, 500, 1, |b, i| {
            if mem_heavy {
                let off0 = b.mul(i, 13);
                let off = b.and(off0, 2047);
                let sh = b.shl(off, 2);
                let a = b.add(p, sh);
                let v = b.load(a, 0);
                let w = b.add(v, i);
                b.store(w, a, 0);
                let t = b.add(acc, w);
                b.assign(acc, t);
            } else {
                let sq = b.mul(i, i);
                let x = b.xor(acc, sq);
                let s = b.shl(x, 1);
                let m = b.and(s, 0xFFFF_FFFF);
                b.assign(acc, m);
            }
        });
        b.ret(acc);
        let id = mb.add(b.finish());
        mb.entry(id);
        (name.to_string(), mb.finish())
    }

    fn small_dataset() -> Dataset {
        let programs = vec![
            program("mem1", true),
            program("alu1", false),
            program("mem2", true),
            program("alu2", false),
        ];
        generate(
            &programs,
            &GenOptions {
                scale: SweepScale {
                    n_uarch: 5,
                    n_opts: 30,
                },
                seed: 11,
                extended_space: false,
                threads: 2,
            },
        )
    }

    #[test]
    fn leave_one_out_prediction_is_reasonable() {
        let ds = small_dataset();
        // Predict for (program 0, uarch 0) having never trained on either.
        let pc = PortableCompiler::train(&ds, Some(0), Some(0), &TrainOptions::default());
        let cfg = pc.predict(&ds.features[0][0]);
        // The predicted setting, evaluated via the dataset's own grid if
        // present, or fresh: just check prediction is valid and the flow
        // runs end to end.
        let choices = cfg.to_choices();
        assert_eq!(choices.len(), OptSpace::n_dims());
    }

    #[test]
    fn training_excludes_the_test_pair() {
        let ds = small_dataset();
        let full = PortableCompiler::train(&ds, None, None, &TrainOptions::default());
        let loo = PortableCompiler::train(&ds, Some(0), Some(0), &TrainOptions::default());
        assert_eq!(full.model().len(), 4 * 5);
        assert_eq!(loo.model().len(), 3 * 4);
    }

    #[test]
    fn optimise_flow_beats_or_matches_o3_on_average() {
        let ds = small_dataset();
        let pc = PortableCompiler::train(&ds, None, None, &TrainOptions::default());
        // Deploy on a program from the suite (in-sample here; the full
        // leave-one-out evaluation lives in portopt-experiments).
        let (name, module) = program("mem_eval", true);
        let _ = name;
        let target = ds.uarchs[0];
        let (img, cfg, t3) = pc.optimise(&module, &target);
        let prof = profile(
            &img,
            &module,
            &[],
            ExecLimits {
                fuel: 100_000_000,
                max_depth: 2048,
            },
        )
        .unwrap();
        let t = evaluate(&img, &prof, &target);
        // Not a strict win requirement at this scale, but the flow must be
        // coherent and within a sane band of the baseline.
        assert!(t.cycles > 0.0);
        assert!(t.cycles < t3.cycles * 2.0, "predicted config catastrophic");
        let _ = cfg;
    }

    #[test]
    fn serialization_round_trip() {
        let ds = small_dataset();
        let pc = PortableCompiler::train(&ds, None, None, &TrainOptions::default());
        let json = serde_json::to_string(&pc).unwrap();
        let back: PortableCompiler = serde_json::from_str(&json).unwrap();
        let x = &ds.features[0][0];
        assert_eq!(pc.predict(x), back.predict(x));
        // The kNN wire shape is untagged — old snapshots stay decodable.
        assert!(!json.contains("model_kind"));
    }

    #[test]
    fn every_model_kind_trains_and_round_trips() {
        let ds = small_dataset();
        let opts = TrainOptions::default();
        for kind in ModelKind::ALL {
            let pc = PortableCompiler::try_train_kind(&ds, None, None, kind, &opts).unwrap();
            assert_eq!(pc.model().kind(), kind);
            assert_eq!(pc.knn().is_some(), kind == ModelKind::Knn);
            let json = serde_json::to_string(&pc).unwrap();
            assert_eq!(json.contains("model_kind"), kind != ModelKind::Knn);
            let back: PortableCompiler = serde_json::from_str(&json).unwrap();
            assert_eq!(back.model().kind(), kind);
            let x = &ds.features[0][0];
            assert_eq!(pc.predict(x), back.predict(x));
        }
    }

    #[test]
    fn trait_dispatch_matches_concrete_knn() {
        let ds = small_dataset();
        let opts = TrainOptions::default();
        let (features, dists) =
            PortableCompiler::training_pairs(&ds, Some(0), Some(0), opts.good_fraction);
        let concrete = KnnModel::try_train(features, dists, opts.k, opts.beta).unwrap();
        let pc =
            PortableCompiler::try_train_kind(&ds, Some(0), Some(0), ModelKind::Knn, &opts).unwrap();
        assert_eq!(pc.knn().unwrap(), &concrete);
        for p in 0..ds.n_programs() {
            let x = &ds.features[p][0].values;
            assert_eq!(pc.model().predict_mode(x), concrete.predict_mode(x));
        }
    }
}
