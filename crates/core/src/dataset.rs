//! Training-data generation (§3.2): evaluate N optimisation settings on
//! M program/microarchitecture pairs and record execution times, plus the
//! `-O3` performance counters that form each pair's feature vector.
//!
//! The expensive part — compiling and *functionally profiling* each
//! (program, setting) binary — is microarchitecture-independent, so it is
//! done once and the resulting profile is priced on every configuration
//! with the fast timing model. That turns the paper's 7-million-simulation
//! sweep into `programs × settings` profiler runs plus 7 million
//! microsecond-scale model evaluations.

use crate::checkpoint::{CheckpointJournal, JournalError};
use portopt_exec::cache::{CacheError, DiskCache};
use portopt_exec::Executor;
use portopt_ir::interp::ExecLimits;
use portopt_ir::Module;
use portopt_passes::{compile, OptConfig};
use portopt_sim::{profile, ExecProfile, PreparedEval};
use portopt_uarch::{FeatureVec, MicroArch, MicroArchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Scale of a sweep (paper scale: 35 programs × 200 μarchs × 1000 settings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepScale {
    /// Number of microarchitecture configurations to sample.
    pub n_uarch: usize,
    /// Number of optimisation settings to sample.
    pub n_opts: usize,
}

impl SweepScale {
    /// The paper's full scale (very slow on a laptop; hours).
    pub fn paper() -> Self {
        SweepScale {
            n_uarch: 200,
            n_opts: 1000,
        }
    }

    /// A laptop-friendly default preserving the experiment's shape.
    pub fn default_scale() -> Self {
        SweepScale {
            n_uarch: 24,
            n_opts: 160,
        }
    }

    /// A CI-friendly smoke scale.
    pub fn smoke() -> Self {
        SweepScale {
            n_uarch: 6,
            n_opts: 40,
        }
    }
}

/// The sweep result: everything the model and every figure needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Program names, index = program id.
    pub programs: Vec<String>,
    /// Sampled microarchitectures, index = configuration id.
    pub uarchs: Vec<MicroArch>,
    /// Sampled optimisation settings (shared across programs).
    pub configs: Vec<OptConfig>,
    /// `cycles[p][u][c]`: execution cycles of program `p` compiled with
    /// setting `c` on configuration `u`.
    pub cycles: Vec<Vec<Vec<f64>>>,
    /// `o3_cycles[p][u]`: the `-O3` baseline.
    pub o3_cycles: Vec<Vec<f64>>,
    /// `features[p][u]`: the 19-feature vector from the single `-O3` run.
    pub features: Vec<Vec<FeatureVec>>,
}

impl Dataset {
    /// Speedup of setting `c` over `-O3` for pair `(p, u)`.
    pub fn speedup(&self, p: usize, u: usize, c: usize) -> f64 {
        self.o3_cycles[p][u] / self.cycles[p][u][c]
    }

    /// Best speedup over `-O3` for pair `(p, u)` across all settings
    /// (the paper's "Best": iterative search over the sampled settings).
    pub fn best_speedup(&self, p: usize, u: usize) -> f64 {
        let best = self.cycles[p][u]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        self.o3_cycles[p][u] / best
    }

    /// Indices of the top `frac` (by speedup) settings for `(p, u)` — the
    /// "good set" Ỹ of §3.3.1 (paper: top 5 %).
    pub fn good_set(&self, p: usize, u: usize, frac: f64) -> Vec<usize> {
        let n = self.configs.len();
        let keep = ((n as f64 * frac).ceil() as usize).clamp(1, n);
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| {
            self.cycles[p][u][a]
                .partial_cmp(&self.cycles[p][u][b])
                .expect("finite cycles")
        });
        idx.truncate(keep);
        idx
    }

    /// Number of programs.
    pub fn n_programs(&self) -> usize {
        self.programs.len()
    }

    /// Number of microarchitectures.
    pub fn n_uarchs(&self) -> usize {
        self.uarchs.len()
    }

    /// Merges per-rig shards of one logical sweep into a single dataset by
    /// concatenating their program axes. Every shard must have been swept
    /// over the *same* microarchitecture and setting samples (same
    /// `GenOptions` seed and scale on every rig) — mismatched axes or a
    /// program appearing in two shards are rejected, since silently mixing
    /// them would corrupt the good-sets the model trains on.
    ///
    /// With the contiguous splits of [`crate::shard::ShardSpec`], merging
    /// shards in index order reproduces the unsharded sweep byte for byte.
    ///
    /// ```
    /// use portopt_core::{generate, Dataset, GenOptions, MergeError, SweepScale};
    /// use portopt_ir::{FuncBuilder, Module, ModuleBuilder};
    ///
    /// fn toy(name: &str, start: i64) -> (String, Module) {
    ///     let mut mb = ModuleBuilder::new(name);
    ///     let mut b = FuncBuilder::new("main", 0);
    ///     let acc = b.iconst(start);
    ///     b.counted_loop(0, 16, 1, |b, i| {
    ///         let t = b.add(acc, i);
    ///         b.assign(acc, t);
    ///     });
    ///     b.ret(acc);
    ///     let id = mb.add(b.finish());
    ///     mb.entry(id);
    ///     (name.to_string(), mb.finish())
    /// }
    ///
    /// // Two rigs sweep disjoint programs under identical options...
    /// let opts = GenOptions {
    ///     scale: SweepScale { n_uarch: 2, n_opts: 3 },
    ///     threads: 1,
    ///     ..GenOptions::default()
    /// };
    /// let rig0 = generate(&[toy("a", 1)], &opts);
    /// let rig1 = generate(&[toy("b", 2)], &opts);
    /// // ...and their shards concatenate into one training dataset.
    /// let merged = Dataset::merge(vec![rig0, rig1]).unwrap();
    /// assert_eq!(merged.programs, vec!["a", "b"]);
    ///
    /// // A shard swept under a different seed is refused, not mixed in.
    /// let foreign = generate(&[toy("c", 3)], &GenOptions { seed: 1, ..opts });
    /// assert!(matches!(
    ///     Dataset::merge(vec![merged, foreign]),
    ///     Err(MergeError::UarchMismatch { shard: 1 })
    /// ));
    /// ```
    pub fn merge(shards: Vec<Dataset>) -> Result<Dataset, MergeError> {
        for (i, shard) in shards.iter().enumerate() {
            if let Some(detail) = shard.shape_defect() {
                return Err(MergeError::MalformedShard { shard: i, detail });
            }
        }
        let mut iter = shards.into_iter();
        let mut merged = iter.next().ok_or(MergeError::NoShards)?;
        for (i, shard) in iter.enumerate() {
            let shard_idx = i + 1;
            if shard.uarchs != merged.uarchs {
                return Err(MergeError::UarchMismatch { shard: shard_idx });
            }
            if shard.configs != merged.configs {
                return Err(MergeError::ConfigMismatch { shard: shard_idx });
            }
            if let Some(dup) = shard.programs.iter().find(|p| merged.programs.contains(p)) {
                return Err(MergeError::DuplicateProgram {
                    shard: shard_idx,
                    name: dup.clone(),
                });
            }
            merged.programs.extend(shard.programs);
            merged.cycles.extend(shard.cycles);
            merged.o3_cycles.extend(shard.o3_cycles);
            merged.features.extend(shard.features);
        }
        Ok(merged)
    }

    /// Describes the first internal-shape inconsistency of this dataset,
    /// or `None` if every per-program table matches the axis lengths.
    /// Generated datasets are always consistent; deserialized shard files
    /// are not guaranteed to be, and an inconsistent one must be rejected
    /// at [`Dataset::merge`] time (with the offending shard named) rather
    /// than panic deep inside training.
    fn shape_defect(&self) -> Option<String> {
        let (np, nu, nc) = (self.programs.len(), self.uarchs.len(), self.configs.len());
        for (name, len) in [
            ("cycles", self.cycles.len()),
            ("o3_cycles", self.o3_cycles.len()),
            ("features", self.features.len()),
        ] {
            if len != np {
                return Some(format!("{name} has {len} rows for {np} programs"));
            }
        }
        for p in 0..np {
            if self.cycles[p].len() != nu {
                return Some(format!(
                    "cycles[{p}] has {} rows for {nu} uarchs",
                    self.cycles[p].len()
                ));
            }
            if let Some(c) = self.cycles[p].iter().find(|c| c.len() != nc) {
                return Some(format!(
                    "cycles[{p}] row has {} settings, axis has {nc}",
                    c.len()
                ));
            }
            if self.o3_cycles[p].len() != nu {
                return Some(format!(
                    "o3_cycles[{p}] has {} entries for {nu} uarchs",
                    self.o3_cycles[p].len()
                ));
            }
            if self.features[p].len() != nu {
                return Some(format!(
                    "features[{p}] has {} entries for {nu} uarchs",
                    self.features[p].len()
                ));
            }
            if let Some(f) = self.features[p]
                .iter()
                .find(|f| f.values.len() != portopt_uarch::N_FEATURES)
            {
                return Some(format!(
                    "features[{p}] vector has {} values, expected {}",
                    f.values.len(),
                    portopt_uarch::N_FEATURES
                ));
            }
        }
        None
    }
}

/// Why [`Dataset::merge`] refused to combine a set of shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No shards were given.
    NoShards,
    /// A shard sampled different microarchitectures than the first shard.
    UarchMismatch {
        /// Index of the offending shard in the input order.
        shard: usize,
    },
    /// A shard sampled different optimisation settings than the first shard.
    ConfigMismatch {
        /// Index of the offending shard in the input order.
        shard: usize,
    },
    /// Two shards both swept the same program.
    DuplicateProgram {
        /// Index of the offending shard in the input order.
        shard: usize,
        /// The program present in both shards.
        name: String,
    },
    /// A shard's internal tables disagree with its own axis lengths (a
    /// hand-edited or truncated shard file).
    MalformedShard {
        /// Index of the offending shard in the input order.
        shard: usize,
        /// The first inconsistency found.
        detail: String,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::NoShards => write!(f, "no shards to merge"),
            MergeError::UarchMismatch { shard } => write!(
                f,
                "shard {shard} sampled different microarchitectures than shard 0 \
                 (all rigs must sweep with the same seed and scale)"
            ),
            MergeError::ConfigMismatch { shard } => write!(
                f,
                "shard {shard} sampled different optimisation settings than shard 0 \
                 (all rigs must sweep with the same seed and scale)"
            ),
            MergeError::DuplicateProgram { shard, name } => {
                write!(f, "shard {shard} re-sweeps program `{name}`")
            }
            MergeError::MalformedShard { shard, detail } => {
                write!(f, "shard {shard} is internally inconsistent: {detail}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Options for dataset generation.
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Sweep scale.
    pub scale: SweepScale,
    /// Master seed (μarch sample, setting sample).
    pub seed: u64,
    /// Use the extended (§7) space with frequency/width.
    pub extended_space: bool,
    /// Worker threads for the sweep (`0` = all available cores). The
    /// dataset is byte-identical for every thread count — see
    /// [`portopt_exec`]'s determinism contract.
    pub threads: usize,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            scale: SweepScale::default_scale(),
            seed: 2009,
            extended_space: false,
            threads: 0,
        }
    }
}

/// Machine-readable throughput record of one generation sweep, for the
/// `BENCH_*.json` perf trajectory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// Programs swept.
    pub programs: usize,
    /// Microarchitectures priced per setting.
    pub uarchs: usize,
    /// Sampled optimisation settings per program.
    pub settings: usize,
    /// Distinct settings after dedup (duplicates reuse compile artifacts).
    pub unique_settings: usize,
    /// `(program, setting)` grid tasks dispatched to the executor.
    pub grid_tasks: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds for the whole sweep (baselines included).
    pub wall_secs: f64,
    /// `programs × settings / wall_secs`: the headline throughput.
    pub settings_per_sec: f64,
}

const PROFILE_LIMITS: ExecLimits = ExecLimits {
    fuel: 100_000_000,
    max_depth: 2048,
};

/// Payload kind of the sweep's on-disk profile cache (the namespace tag
/// every entry carries and [`DiskCache::get`] validates).
pub const PROFILE_CACHE_KIND: &str = "exec-profile";

/// Version of the profile-cache payload encoding. Bump whenever
/// [`ExecProfile`]'s serialized shape changes **or** the cache key stops
/// covering something it used to (an IR or layout encoding change, a new
/// profiling input outside the image + globals + limits the key hashes):
/// a cache written under the old meaning is then rejected loudly instead
/// of silently pricing from the wrong profile.
pub const PROFILE_CACHE_PAYLOAD_VERSION: u32 = 1;

/// One persisted profiling outcome, keyed on disk by a structural hash of
/// everything the profile depends on: the compiled image
/// ([`portopt_passes::CodeImage::fingerprint`]'s coverage), the module's
/// global initialiser data, and the profiling limits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedProfile {
    /// The functional profile, or `None` when the binary failed to run
    /// (fuel blow-up from a pathological setting). Failures are cached
    /// too — re-discovering one costs a full interpreter budget.
    pub profile: Option<ExecProfile>,
}

/// Opens (creating if needed) an on-disk profile cache for sweeps —
/// a [`DiskCache`] bound to this crate's payload kind and version.
pub fn open_profile_cache(dir: impl AsRef<std::path::Path>) -> Result<DiskCache, CacheError> {
    DiskCache::open(dir, PROFILE_CACHE_KIND, PROFILE_CACHE_PAYLOAD_VERSION)
}

/// Evaluates one program: compiles and profiles each setting once, prices
/// it on every configuration. Returns `(cycles[u][c], o3_cycles[u],
/// features[u])`.
type ProgramSweep = (Vec<Vec<f64>>, Vec<f64>, Vec<FeatureVec>);

/// Per-program cache of evaluation rows, keyed by compiled-image
/// fingerprint: distinct settings that lower a program to the same machine
/// code share one profiling run (the expensive step).
type ProfileCache = Mutex<HashMap<u64, Arc<Vec<f64>>>>;

/// The persistent cache key for one profiling run: everything the
/// profile is a function of. The image fingerprint alone is *not* enough
/// for a cache that outlives the process — `profile` also seeds memory
/// from the module's global initializers (which the image only records as
/// `(base, bytes)`) and stops at [`PROFILE_LIMITS`], so both are folded
/// into the key. A suite-data edit or a limits bump then misses cleanly
/// instead of silently serving a profile of the old inputs.
fn profile_disk_key(img: &portopt_passes::CodeImage, module: &Module) -> u64 {
    use std::hash::{Hash as _, Hasher as _};
    let mut h = portopt_ir::StableHasher::new();
    img.hash(&mut h);
    // Name, size and the initialiser words of every global (derived
    // structural Hash, like the image itself).
    module.globals.hash(&mut h);
    (PROFILE_LIMITS.fuel, PROFILE_LIMITS.max_depth).hash(&mut h);
    h.finish()
}

/// Collects the functional profile of one compiled image — the expensive,
/// microarchitecture-independent step — consulting the on-disk cache
/// first when one is given. `None` means the binary failed to run.
///
/// A cache entry that exists but is refused (corrupt, written by a stale
/// payload encoding, wrong kind) is **not** fatal: the sweep logs the
/// specific rejection, re-profiles, and overwrites the entry, so a bad
/// cache costs throughput, never correctness.
fn profile_for(
    img: &portopt_passes::CodeImage,
    module: &Module,
    disk: Option<&DiskCache>,
) -> Option<ExecProfile> {
    let keyed = disk.map(|d| (d, profile_disk_key(img, module)));
    if let Some((d, fp)) = keyed {
        match d.get::<CachedProfile>(fp) {
            Ok(Some(entry)) => {
                portopt_trace::debug!(
                    "core.dataset",
                    { fp = format!("{fp:016x}") },
                    "disk profile cache hit"
                );
                return entry.profile;
            }
            Ok(None) => {}
            Err(e) => portopt_trace::warn!(
                "core.dataset",
                "profile cache entry {fp:016x} rejected: {e}; re-profiling"
            ),
        }
    }
    let sp = portopt_trace::span("core.dataset", "profile", &[]);
    let prof = profile(img, module, &[], PROFILE_LIMITS).ok();
    sp.close_with(&[("ok", prof.is_some().into())]);
    if let Some((d, fp)) = keyed {
        if let Err(e) = d.put(
            fp,
            &CachedProfile {
                profile: prof.clone(),
            },
        ) {
            portopt_trace::warn!(
                "core.dataset",
                "profile cache write for {fp:016x} failed: {e}"
            );
        }
    }
    prof
}

/// Profiles one compiled image and prices it on every configuration —
/// the per-task kernel shared by dataset generation and the LOO pricing
/// loop in `portopt-experiments`. A binary that fails to run (fuel
/// blow-up from a pathological unroll, say) is priced as unusable
/// (`INFINITY` everywhere).
pub fn price_image(
    img: &portopt_passes::CodeImage,
    module: &Module,
    uarchs: &[MicroArch],
) -> Vec<f64> {
    price_image_with(img, module, uarchs, None)
}

/// [`price_image`] with an optional on-disk profile cache.
fn price_image_with(
    img: &portopt_passes::CodeImage,
    module: &Module,
    uarchs: &[MicroArch],
    disk: Option<&DiskCache>,
) -> Vec<f64> {
    match profile_for(img, module, disk) {
        Some(prof) => {
            let pe = PreparedEval::new(img, &prof);
            uarchs
                .iter()
                .enumerate()
                .map(|(u, ua)| {
                    let t0 = std::time::Instant::now();
                    let cycles = pe.evaluate(ua).cycles;
                    portopt_trace::trace!(
                        "core.dataset",
                        { u = u, eval_us = t0.elapsed().as_micros() as u64 },
                        "uarch evaluated"
                    );
                    cycles
                })
                .collect()
        }
        None => vec![f64::INFINITY; uarchs.len()],
    }
}

/// Compiles one setting, profiles it (or reuses a cached profile of an
/// identical binary — in-memory within this sweep, on disk across sweeps)
/// and prices it on every configuration. Pure in `(module, cfg, uarchs)`
/// — both caches only short-circuit recomputation, which is what keeps
/// the sweep deterministic under any scheduling. The returned flag says
/// whether the row came from the in-memory fingerprint cache (another
/// setting lowered to an identical binary) — pricing-span attribution.
fn eval_setting(
    module: &Module,
    uarchs: &[MicroArch],
    cfg: &OptConfig,
    cache: &ProfileCache,
    disk: Option<&DiskCache>,
) -> (Arc<Vec<f64>>, bool) {
    let img = compile(module, cfg);
    let fp = img.fingerprint();
    if let Some(hit) = cache.lock().expect("profile cache").get(&fp) {
        return (hit.clone(), true);
    }
    let row = Arc::new(price_image_with(&img, module, uarchs, disk));
    let row = cache
        .lock()
        .expect("profile cache")
        .entry(fp)
        .or_insert_with(|| row.clone())
        .clone();
    (row, false)
}

/// `-O3` baseline for one program: cycles + counter features per
/// configuration. The `-O3` profiling run goes through the same on-disk
/// cache as the setting sweep.
fn o3_baseline(
    module: &Module,
    uarchs: &[MicroArch],
    disk: Option<&DiskCache>,
) -> (Vec<f64>, Vec<FeatureVec>) {
    let img3 = compile(module, &OptConfig::o3());
    let prof3 = profile_for(&img3, module, disk)
        .expect("O3 binary must run (checked by the mibench tests)");
    let pe = PreparedEval::new(&img3, &prof3);
    let mut o3_cycles = Vec::with_capacity(uarchs.len());
    let mut features = Vec::with_capacity(uarchs.len());
    for u in uarchs {
        let t = pe.evaluate(u);
        o3_cycles.push(t.cycles);
        features.push(FeatureVec::new(&t.counters, u));
    }
    (o3_cycles, features)
}

/// Deduplicates sampled settings: returns `(unique-task → config index,
/// config index → unique task)`. Random 39-dimension samples rarely
/// collide, but figure sweeps and searches revisit settings freely, and a
/// duplicate costs a whole compile+profile run.
fn dedup_configs(configs: &[OptConfig]) -> (Vec<usize>, Vec<usize>) {
    let mut first: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut uniques: Vec<usize> = Vec::new();
    let mut to_unique: Vec<usize> = Vec::with_capacity(configs.len());
    for (c, cfg) in configs.iter().enumerate() {
        let key = cfg.to_choices();
        match first.get(&key) {
            Some(&u) => to_unique.push(u),
            None => {
                first.insert(key, uniques.len());
                to_unique.push(uniques.len());
                uniques.push(c);
            }
        }
    }
    (uniques, to_unique)
}

/// Sweeps one program over the settings on the given executor: the unit of
/// work behind [`generate`], exposed for benchmarking (`cargo bench`).
pub fn sweep_program(
    module: &Module,
    uarchs: &[MicroArch],
    configs: &[OptConfig],
    exec: &Executor,
) -> ProgramSweep {
    let (o3_cycles, features) = o3_baseline(module, uarchs, None);
    let (uniques, to_unique) = dedup_configs(configs);
    let cache: ProfileCache = Mutex::new(HashMap::new());
    let rows = exec.map_indexed(uniques.len(), |t| {
        eval_setting(module, uarchs, &configs[uniques[t]], &cache, None).0
    });
    let mut cycles: Vec<Vec<f64>> = vec![vec![0.0; configs.len()]; uarchs.len()];
    for (c, &t) in to_unique.iter().enumerate() {
        for (u, cy) in rows[t].iter().enumerate() {
            cycles[u][c] = *cy;
        }
    }
    (cycles, o3_cycles, features)
}

/// Samples the setting list for a seed — the one sampling recipe shared by
/// every generation entry point (and the sweep benchmarks), so figure
/// sweeps and tracked throughput numbers see the same settings as
/// [`generate`].
pub fn sample_configs(n_opts: usize, seed: u64) -> Vec<OptConfig> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    (0..n_opts).map(|_| OptConfig::sample(&mut rng)).collect()
}

/// The flattened-grid sweep shared by [`generate`] and
/// [`generate_with_uarchs`]: one executor pass over every
/// `(program, unique setting)` task, so stragglers in one program overlap
/// with work from the next.
fn sweep_grid(
    programs: &[(String, Module)],
    uarchs: Vec<MicroArch>,
    configs: Vec<OptConfig>,
    threads: usize,
    disk: Option<&DiskCache>,
    journal: Option<&CheckpointJournal>,
) -> (Dataset, SweepReport) {
    let start = std::time::Instant::now();
    let exec = Executor::new(threads);
    let np = programs.len();
    let sweep_span = portopt_trace::span(
        "core.dataset",
        "sweep_grid",
        &[
            ("programs", np.into()),
            ("settings", configs.len().into()),
            ("uarchs", uarchs.len().into()),
            ("threads", exec.threads().into()),
        ],
    );

    // `-O3` baselines, parallel over programs. A journalled baseline is
    // replayed instead of recomputed; a fresh one is journalled as soon as
    // it completes.
    let baselines = exec.map_indexed(np, |p| {
        let sp = portopt_trace::span(
            "core.dataset",
            "baseline",
            &[("program", programs[p].0.as_str().into()), ("p", p.into())],
        );
        if let Some(j) = journal {
            if let Some(b) = j.replayed_baseline(p) {
                sp.close_with(&[("source", "journal".into())]);
                return b;
            }
        }
        let b = o3_baseline(&programs[p].1, &uarchs, disk);
        if let Some(j) = journal {
            j.record_baseline(p, &b.0, &b.1);
        }
        sp.close_with(&[("source", "computed".into())]);
        b
    });

    // The flattened (program, unique-setting) grid in one executor pass.
    // Checkpointed pairs skip even the compile; every completed pair is
    // journalled — including in-memory fingerprint-cache hits, so a resume
    // never depends on which duplicate finished first.
    let (uniques, to_unique) = dedup_configs(&configs);
    let nu = uniques.len();
    let caches: Vec<ProfileCache> = (0..np).map(|_| Mutex::new(HashMap::new())).collect();
    let rows = exec.map_indexed(np * nu, |i| {
        let (p, t) = (i / nu, i % nu);
        // The per-(program, setting) pricing span: the unit the `trace`
        // bin's top-N-slowest-pairs report ranks. `source` attributes the
        // row: journal replay, in-memory fingerprint share, or a real
        // compile+profile+price run.
        let sp = portopt_trace::span(
            "core.dataset",
            "price_pair",
            &[
                ("program", programs[p].0.as_str().into()),
                ("p", p.into()),
                ("t", t.into()),
            ],
        );
        if let Some(j) = journal {
            if let Some(row) = j.replayed_pair(p, t) {
                sp.close_with(&[("source", "journal".into())]);
                return row;
            }
        }
        let (row, shared) = eval_setting(
            &programs[p].1,
            &uarchs,
            &configs[uniques[t]],
            &caches[p],
            disk,
        );
        if let Some(j) = journal {
            j.record_pair(p, t, &row);
        }
        sp.close_with(&[(
            "source",
            if shared { "fp_share" } else { "computed" }.into(),
        )]);
        row
    });

    let mut ds = Dataset {
        programs: programs.iter().map(|(n, _)| n.clone()).collect(),
        uarchs,
        configs,
        cycles: Vec::new(),
        o3_cycles: Vec::new(),
        features: Vec::new(),
    };
    for (p, (o3, feats)) in baselines.into_iter().enumerate() {
        let mut cycles: Vec<Vec<f64>> = vec![vec![0.0; ds.configs.len()]; ds.uarchs.len()];
        for (c, &t) in to_unique.iter().enumerate() {
            for (u, cy) in rows[p * nu + t].iter().enumerate() {
                cycles[u][c] = *cy;
            }
        }
        ds.cycles.push(cycles);
        ds.o3_cycles.push(o3);
        ds.features.push(feats);
    }

    sweep_span.close_with(&[("grid_tasks", (np * nu).into())]);
    let wall_secs = start.elapsed().as_secs_f64();
    let swept = ds.programs.len() * ds.configs.len();
    let report = SweepReport {
        programs: ds.programs.len(),
        uarchs: ds.uarchs.len(),
        settings: ds.configs.len(),
        unique_settings: nu,
        grid_tasks: np * nu,
        threads: exec.threads(),
        wall_secs,
        settings_per_sec: if wall_secs > 0.0 {
            swept as f64 / wall_secs
        } else {
            0.0
        },
    };
    (ds, report)
}

/// Generates a full dataset for the given programs.
pub fn generate(programs: &[(String, Module)], opts: &GenOptions) -> Dataset {
    generate_with_report(programs, opts).0
}

/// [`generate`] plus the sweep's [`SweepReport`].
pub fn generate_with_report(
    programs: &[(String, Module)],
    opts: &GenOptions,
) -> (Dataset, SweepReport) {
    generate_with_cache(programs, opts, None)
}

/// [`generate_with_report`] with an optional on-disk profile cache
/// (opened via [`open_profile_cache`]): every compile's profiling run is
/// first looked up by the image's structural fingerprint and persisted on
/// miss, so repeated sweeps — including each rig of a sharded sweep
/// re-run after a crash or a scale change that shares settings — reuse
/// profiling runs *across process invocations*, not just within one.
///
/// The cache never changes the result: a sweep with a warm, cold, or
/// partially-corrupted cache produces a byte-identical dataset to one
/// with no cache at all (rejected entries are logged, recomputed and
/// overwritten). `cargo test -p portopt-core` asserts this.
pub fn generate_with_cache(
    programs: &[(String, Module)],
    opts: &GenOptions,
    disk: Option<&DiskCache>,
) -> (Dataset, SweepReport) {
    generate_with_checkpoint(programs, opts, disk, None)
}

/// [`generate_with_cache`] with an optional checkpoint journal (opened via
/// [`open_sweep_journal`]): every completed `(program, setting)` pair and
/// `-O3` baseline is appended to the journal as it finishes, and results
/// already in the journal are **replayed instead of re-priced** — a sweep
/// killed mid-shard and restarted with identical flags resumes where it
/// died. Like the profile cache, the journal never changes the result: a
/// resumed sweep's dataset is byte-identical to an uninterrupted run
/// (asserted by `cargo test -p portopt-core` and the CI crash-resume job).
pub fn generate_with_checkpoint(
    programs: &[(String, Module)],
    opts: &GenOptions,
    disk: Option<&DiskCache>,
    journal: Option<&CheckpointJournal>,
) -> (Dataset, SweepReport) {
    let (uarchs, configs) = sample_axes(opts);
    sweep_grid(programs, uarchs, configs, opts.threads, disk, journal)
}

/// Samples both sweep axes for the given options — the single sampling
/// recipe [`generate`] and the plan fingerprint agree on.
fn sample_axes(opts: &GenOptions) -> (Vec<MicroArch>, Vec<OptConfig>) {
    let space = if opts.extended_space {
        MicroArchSpace::extended()
    } else {
        MicroArchSpace::base()
    };
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let uarchs = space.sample_n(opts.scale.n_uarch, &mut rng);
    let configs = sample_configs(opts.scale.n_opts, opts.seed);
    (uarchs, configs)
}

/// Structural fingerprint of one sweep plan: the program list (names and
/// full module structure), both sampled axes, and the profiling limits —
/// everything a journalled row is a function of. Two invocations share a
/// fingerprint exactly when a checkpoint journal written by one can be
/// replayed by the other; [`open_sweep_journal`] refuses any other journal
/// with [`JournalError::PlanMismatch`].
pub fn plan_fingerprint(programs: &[(String, Module)], opts: &GenOptions) -> u64 {
    use std::hash::{Hash as _, Hasher as _};
    let mut h = portopt_ir::StableHasher::new();
    programs.len().hash(&mut h);
    for (name, module) in programs {
        name.hash(&mut h);
        module.hash(&mut h);
    }
    // The sampled axes are covered via their canonical encodings (the
    // same ones shard merging compares), so the fingerprint tracks the
    // actual samples, not just the seed that produced them.
    let (uarchs, configs) = sample_axes(opts);
    serde_json::to_vec(&uarchs)
        .expect("uarchs serialize")
        .hash(&mut h);
    for cfg in &configs {
        cfg.to_choices().hash(&mut h);
    }
    (PROFILE_LIMITS.fuel, PROFILE_LIMITS.max_depth).hash(&mut h);
    h.finish()
}

/// Opens (creating if needed) the checkpoint journal at `path` for a sweep
/// of `programs` under `opts`, fingerprinting the plan so a journal from a
/// different sweep — other programs, seed, scale, space or limits — is
/// refused with a typed [`JournalError`] instead of replayed.
pub fn open_sweep_journal(
    path: impl AsRef<std::path::Path>,
    programs: &[(String, Module)],
    opts: &GenOptions,
) -> Result<CheckpointJournal, JournalError> {
    CheckpointJournal::open(path, plan_fingerprint(programs, opts))
}

/// Generates a dataset priced on the given (named) microarchitectures
/// instead of sampling `opts.scale.n_uarch` from the design space. The
/// setting sample is identical to [`generate`]'s for the same seed, so
/// figure sweeps that pin their configurations (Figure 1's three named
/// machines, say) see the same settings without pricing everything twice.
pub fn generate_with_uarchs(
    programs: &[(String, Module)],
    uarchs: &[MicroArch],
    opts: &GenOptions,
) -> (Dataset, SweepReport) {
    let configs = sample_configs(opts.scale.n_opts, opts.seed);
    sweep_grid(programs, uarchs.to_vec(), configs, opts.threads, None, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_ir::{FuncBuilder, ModuleBuilder};

    fn tiny_program(name: &str, stride: i64) -> (String, Module) {
        let mut mb = ModuleBuilder::new(name);
        let (_, base) = mb.global("buf", 512);
        let mut b = FuncBuilder::new("main", 0);
        let p = b.iconst(base as i64);
        let acc = b.iconst(0);
        b.counted_loop(0, 400, 1, |b, i| {
            let off0 = b.mul(i, stride);
            let off = b.and(off0, 511);
            let sh = b.shl(off, 2);
            let a = b.add(p, sh);
            let v = b.load(a, 0);
            let w = b.add(v, i);
            b.store(w, a, 0);
            let t = b.add(acc, w);
            b.assign(acc, t);
        });
        b.ret(acc);
        let id = mb.add(b.finish());
        mb.entry(id);
        (name.to_string(), mb.finish())
    }

    fn tiny_dataset() -> Dataset {
        let programs = vec![tiny_program("p1", 1), tiny_program("p2", 7)];
        generate(
            &programs,
            &GenOptions {
                scale: SweepScale {
                    n_uarch: 4,
                    n_opts: 12,
                },
                seed: 5,
                extended_space: false,
                threads: 2,
            },
        )
    }

    #[test]
    fn dataset_shape() {
        let ds = tiny_dataset();
        assert_eq!(ds.n_programs(), 2);
        assert_eq!(ds.n_uarchs(), 4);
        assert_eq!(ds.configs.len(), 12);
        assert_eq!(ds.cycles[0].len(), 4);
        assert_eq!(ds.cycles[0][0].len(), 12);
        assert_eq!(ds.features[1].len(), 4);
        assert_eq!(ds.features[0][0].values.len(), portopt_uarch::N_FEATURES);
    }

    #[test]
    fn cycles_are_positive_and_best_is_best() {
        let ds = tiny_dataset();
        for p in 0..2 {
            for u in 0..4 {
                assert!(ds.o3_cycles[p][u] > 0.0);
                let best = ds.best_speedup(p, u);
                for c in 0..12 {
                    assert!(ds.cycles[p][u][c] > 0.0);
                    assert!(ds.speedup(p, u, c) <= best + 1e-12);
                }
            }
        }
    }

    #[test]
    fn good_set_contains_the_best() {
        let ds = tiny_dataset();
        let gs = ds.good_set(0, 0, 0.25);
        assert_eq!(gs.len(), 3); // ceil(12 * 0.25)
                                 // The first element is the single best setting.
        let best_c = (0..12)
            .min_by(|&a, &b| ds.cycles[0][0][a].partial_cmp(&ds.cycles[0][0][b]).unwrap())
            .unwrap();
        assert_eq!(gs[0], best_c);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_dataset();
        let b = tiny_dataset();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.o3_cycles, b.o3_cycles);
        assert_eq!(a.uarchs, b.uarchs);
    }

    #[test]
    fn byte_identical_across_thread_counts() {
        let programs = vec![tiny_program("p1", 1), tiny_program("p2", 7)];
        let gen_at = |threads: usize| {
            generate(
                &programs,
                &GenOptions {
                    scale: SweepScale {
                        n_uarch: 3,
                        n_opts: 10,
                    },
                    seed: 41,
                    extended_space: false,
                    threads,
                },
            )
        };
        let reference = gen_at(1);
        for threads in [2, 8] {
            let ds = gen_at(threads);
            assert_eq!(ds.cycles, reference.cycles, "threads = {threads}");
            assert_eq!(ds.o3_cycles, reference.o3_cycles, "threads = {threads}");
            let f = |d: &Dataset| -> Vec<Vec<f64>> {
                d.features
                    .iter()
                    .flatten()
                    .map(|v| v.values.clone())
                    .collect()
            };
            assert_eq!(f(&ds), f(&reference), "threads = {threads}");
        }
    }

    #[test]
    fn duplicate_settings_share_results() {
        // A config list with explicit duplicates: the sweep must price the
        // duplicates identically to their first occurrence (and the dedup
        // means they cost nothing extra).
        let (_, module) = tiny_program("p", 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut configs = vec![
            OptConfig::o3(),
            OptConfig::sample(&mut rng),
            OptConfig::o0(),
        ];
        configs.push(configs[1]); // duplicate of the sampled setting
        configs.push(OptConfig::o3()); // duplicate of index 0
        let space = portopt_uarch::MicroArchSpace::base();
        let mut urng = rand::rngs::StdRng::seed_from_u64(5);
        let uarchs = space.sample_n(2, &mut urng);
        let (cycles, o3, _) =
            sweep_program(&module, &uarchs, &configs, &portopt_exec::Executor::new(2));
        for u in 0..uarchs.len() {
            assert_eq!(cycles[u][1], cycles[u][3], "duplicate sampled setting");
            assert_eq!(cycles[u][0], cycles[u][4], "duplicate O3 setting");
            assert!(o3[u] > 0.0);
        }
    }

    #[test]
    fn report_counts_match() {
        let programs = vec![tiny_program("p1", 1)];
        let (ds, report) = generate_with_report(
            &programs,
            &GenOptions {
                scale: SweepScale {
                    n_uarch: 2,
                    n_opts: 8,
                },
                seed: 11,
                extended_space: false,
                threads: 1,
            },
        );
        assert_eq!(report.programs, 1);
        assert_eq!(report.uarchs, 2);
        assert_eq!(report.settings, 8);
        assert!(report.unique_settings <= 8 && report.unique_settings >= 1);
        assert_eq!(report.grid_tasks, report.unique_settings);
        assert!(report.wall_secs > 0.0);
        assert!(report.settings_per_sec > 0.0);
        assert_eq!(ds.configs.len(), 8);
    }

    #[test]
    fn merge_concatenates_matching_shards() {
        let opts = GenOptions {
            scale: SweepScale {
                n_uarch: 3,
                n_opts: 8,
            },
            seed: 77,
            extended_space: false,
            threads: 2,
        };
        let a = generate(&[tiny_program("p1", 1)], &opts);
        let b = generate(&[tiny_program("p2", 7), tiny_program("p3", 3)], &opts);
        let whole = generate(
            &[
                tiny_program("p1", 1),
                tiny_program("p2", 7),
                tiny_program("p3", 3),
            ],
            &opts,
        );
        let merged = Dataset::merge(vec![a, b]).expect("axes match");
        assert_eq!(merged.programs, vec!["p1", "p2", "p3"]);
        assert_eq!(merged.cycles, whole.cycles);
        assert_eq!(merged.o3_cycles, whole.o3_cycles);
        assert_eq!(merged.uarchs, whole.uarchs);
        assert_eq!(merged.configs, whole.configs);
    }

    #[test]
    fn merge_rejects_mismatched_axes_and_duplicates() {
        let opts = |seed| GenOptions {
            scale: SweepScale {
                n_uarch: 2,
                n_opts: 6,
            },
            seed,
            extended_space: false,
            threads: 1,
        };
        let base = generate(&[tiny_program("p1", 1)], &opts(1));
        let other_seed = generate(&[tiny_program("p2", 7)], &opts(2));
        assert!(matches!(
            Dataset::merge(vec![base.clone(), other_seed]),
            Err(MergeError::UarchMismatch { shard: 1 })
        ));
        // Same uarch sample, different settings: swap in a fresh config list.
        let mut bad_cfgs = generate(&[tiny_program("p2", 7)], &opts(1));
        bad_cfgs.configs[0] = OptConfig::o0();
        assert!(matches!(
            Dataset::merge(vec![base.clone(), bad_cfgs]),
            Err(MergeError::ConfigMismatch { shard: 1 })
        ));
        let dup = generate(&[tiny_program("p1", 1)], &opts(1));
        match Dataset::merge(vec![base.clone(), dup]) {
            Err(MergeError::DuplicateProgram { shard: 1, name }) => assert_eq!(name, "p1"),
            other => panic!("expected duplicate-program error, got {other:?}"),
        }
        assert!(matches!(
            Dataset::merge(Vec::new()),
            Err(MergeError::NoShards)
        ));
        // A single shard merges to itself.
        let solo = Dataset::merge(vec![base.clone()]).unwrap();
        assert_eq!(solo.cycles, base.cycles);
    }

    #[test]
    fn merge_rejects_internally_inconsistent_shards() {
        let opts = GenOptions {
            scale: SweepScale {
                n_uarch: 2,
                n_opts: 6,
            },
            seed: 1,
            extended_space: false,
            threads: 1,
        };
        let base = generate(&[tiny_program("p1", 1)], &opts);
        // A truncated per-uarch cycles table (as a hand-edited or cut-off
        // shard file could produce) must be rejected with the defect named,
        // not panic later inside training.
        let mut truncated = generate(&[tiny_program("p2", 7)], &opts);
        truncated.cycles[0].pop();
        match Dataset::merge(vec![base.clone(), truncated]) {
            Err(MergeError::MalformedShard { shard: 1, detail }) => {
                assert!(detail.contains("cycles"), "{detail}")
            }
            other => panic!("expected MalformedShard, got {other:?}"),
        }
        // A feature vector of the wrong width is equally fatal.
        let mut bad_feats = generate(&[tiny_program("p3", 3)], &opts);
        bad_feats.features[0][0].values.pop();
        assert!(matches!(
            Dataset::merge(vec![base, bad_feats]),
            Err(MergeError::MalformedShard { shard: 1, .. })
        ));
    }

    fn cache_scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "portopt-profile-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn warm_disk_cache_reproduces_the_cold_sweep_exactly() {
        let dir = cache_scratch_dir("warm");
        let programs = vec![tiny_program("p1", 1), tiny_program("p2", 7)];
        let opts = GenOptions {
            scale: SweepScale {
                n_uarch: 3,
                n_opts: 10,
            },
            seed: 99,
            extended_space: false,
            threads: 2,
        };
        let baseline = generate(&programs, &opts);

        let cold_cache = open_profile_cache(&dir).unwrap();
        let (cold, _) = generate_with_cache(&programs, &opts, Some(&cold_cache));
        let cold_stats = cold_cache.stats();
        assert_eq!(cold_stats.hits, 0, "first run must be all misses");
        assert!(cold_stats.misses > 0);

        let warm_cache = open_profile_cache(&dir).unwrap();
        let (warm, _) = generate_with_cache(&programs, &opts, Some(&warm_cache));
        let warm_stats = warm_cache.stats();
        assert!(warm_stats.hits > 0, "second run must hit: {warm_stats:?}");
        assert_eq!(warm_stats.misses, 0, "{warm_stats:?}");
        assert_eq!(warm_stats.rejected, 0, "{warm_stats:?}");

        // The cache must never change the result: no-cache, cold and warm
        // sweeps serialize byte-identically.
        let bytes = |ds: &Dataset| serde_json::to_vec(ds).unwrap();
        assert_eq!(bytes(&cold), bytes(&baseline));
        assert_eq!(bytes(&warm), bytes(&baseline));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_and_stale_cache_entries_fall_back_to_reprofiling() {
        let dir = cache_scratch_dir("corrupt");
        let programs = vec![tiny_program("p1", 3)];
        let opts = GenOptions {
            scale: SweepScale {
                n_uarch: 2,
                n_opts: 8,
            },
            seed: 123,
            extended_space: false,
            threads: 1,
        };
        let cold_cache = open_profile_cache(&dir).unwrap();
        let (cold, _) = generate_with_cache(&programs, &opts, Some(&cold_cache));

        // Vandalise every entry: truncated JSON in one, a stale payload
        // version in the rest (as an old-IR-encoding cache would hold).
        let mut entries: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        entries.sort();
        assert!(entries.len() > 1, "expected several cache entries");
        std::fs::write(&entries[0], b"{ truncated").unwrap();
        for path in &entries[1..] {
            let stale = std::fs::read_to_string(path)
                .unwrap()
                .replace("\"payload_version\":1", "\"payload_version\":0");
            std::fs::write(path, stale).unwrap();
        }

        // The sweep must reject every entry (named errors on stderr),
        // re-profile, produce identical output, and repair the cache.
        let vandalised = open_profile_cache(&dir).unwrap();
        let (redone, _) = generate_with_cache(&programs, &opts, Some(&vandalised));
        let stats = vandalised.stats();
        assert_eq!(stats.hits, 0, "{stats:?}");
        assert_eq!(stats.rejected as usize, entries.len(), "{stats:?}");
        let bytes = |ds: &Dataset| serde_json::to_vec(ds).unwrap();
        assert_eq!(bytes(&redone), bytes(&cold));

        // Overwritten entries serve the next run normally.
        let repaired = open_profile_cache(&dir).unwrap();
        let (again, _) = generate_with_cache(&programs, &opts, Some(&repaired));
        assert_eq!(repaired.stats().rejected, 0);
        assert!(repaired.stats().hits > 0);
        assert_eq!(bytes(&again), bytes(&cold));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn changed_global_data_misses_the_disk_cache() {
        // Two modules with identical code (identical image fingerprints)
        // but different global initialiser data: profiles differ, so the
        // second sweep must MISS the first's entries, not reuse them.
        let dir = cache_scratch_dir("globals");
        let variant = |init: i64| -> (String, Module) {
            let mut mb = ModuleBuilder::new("p");
            let (_, base) = mb.global_init("buf", 64, vec![init; 64]);
            let mut b = FuncBuilder::new("main", 0);
            let p = b.iconst(base as i64);
            let acc = b.iconst(0);
            b.counted_loop(0, 40, 1, |b, i| {
                let off = b.and(i, 63);
                let sh = b.shl(off, 2);
                let a = b.add(p, sh);
                let v = b.load(a, 0);
                let t = b.add(acc, v);
                b.assign(acc, t);
            });
            b.ret(acc);
            let id = mb.add(b.finish());
            mb.entry(id);
            ("p".to_string(), mb.finish())
        };
        let opts = GenOptions {
            scale: SweepScale {
                n_uarch: 2,
                n_opts: 6,
            },
            seed: 31,
            extended_space: false,
            threads: 1,
        };
        let cold = open_profile_cache(&dir).unwrap();
        generate_with_cache(&[variant(1)], &opts, Some(&cold));
        let other_data = open_profile_cache(&dir).unwrap();
        generate_with_cache(&[variant(2)], &opts, Some(&other_data));
        let s = other_data.stats();
        assert_eq!(
            s.hits, 0,
            "stale profiles served across a data change: {s:?}"
        );
        assert!(s.misses > 0);
        // Same data again: now everything hits.
        let warm = open_profile_cache(&dir).unwrap();
        generate_with_cache(&[variant(2)], &opts, Some(&warm));
        assert!(warm.stats().hits > 0);
        assert_eq!(warm.stats().misses, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_sweep_merges_byte_identically_to_unsharded() {
        use crate::shard::ShardSpec;
        let programs = vec![
            tiny_program("p1", 1),
            tiny_program("p2", 7),
            tiny_program("p3", 3),
            tiny_program("p4", 5),
            tiny_program("p5", 2),
        ];
        let opts = GenOptions {
            scale: SweepScale {
                n_uarch: 2,
                n_opts: 6,
            },
            seed: 7,
            extended_space: false,
            threads: 2,
        };
        let whole = generate(&programs, &opts);
        let shards: Vec<Dataset> = (0..3)
            .map(|i| {
                let spec = ShardSpec::new(i, 3).unwrap();
                generate(spec.slice(&programs), &opts)
            })
            .collect();
        let merged = Dataset::merge(shards).unwrap();
        assert_eq!(
            serde_json::to_vec(&merged).unwrap(),
            serde_json::to_vec(&whole).unwrap(),
            "contiguous shards must merge back to the unsharded sweep"
        );
    }

    #[test]
    fn checkpointed_sweep_resumes_byte_identically() {
        let dir = cache_scratch_dir("journal-resume");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.journal");
        let programs = vec![tiny_program("p1", 1), tiny_program("p2", 7)];
        let opts = GenOptions {
            scale: SweepScale {
                n_uarch: 3,
                n_opts: 10,
            },
            seed: 44,
            extended_space: false,
            threads: 2,
        };
        let baseline = generate(&programs, &opts);
        let bytes = |ds: &Dataset| serde_json::to_vec(ds).unwrap();

        // First attempt journals every pair and baseline as it completes.
        let first = open_sweep_journal(&path, &programs, &opts).unwrap();
        assert_eq!(first.resumed_pairs(), 0);
        let (cold, report) = generate_with_checkpoint(&programs, &opts, None, Some(&first));
        assert_eq!(bytes(&cold), bytes(&baseline));
        assert_eq!(
            first.recorded(),
            (report.grid_tasks + report.programs) as u64,
            "every pair and baseline journalled"
        );
        drop(first);

        // A "restart" with identical flags replays everything: zero pairs
        // re-priced (recorded() stays 0), output still byte-identical.
        let resumed = open_sweep_journal(&path, &programs, &opts).unwrap();
        assert_eq!(resumed.resumed_pairs(), report.grid_tasks);
        assert_eq!(resumed.resumed_baselines(), report.programs);
        let (warm, _) = generate_with_checkpoint(&programs, &opts, None, Some(&resumed));
        assert_eq!(resumed.recorded(), 0, "full replay re-prices nothing");
        assert_eq!(bytes(&warm), bytes(&baseline));
        resumed.retire().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_journal_resumes_only_the_missing_work() {
        let dir = cache_scratch_dir("journal-partial");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.journal");
        let programs = vec![tiny_program("p1", 1), tiny_program("p2", 7)];
        let opts = GenOptions {
            scale: SweepScale {
                n_uarch: 2,
                n_opts: 8,
            },
            seed: 45,
            extended_space: false,
            threads: 1,
        };
        let baseline = generate(&programs, &opts);
        let bytes = |ds: &Dataset| serde_json::to_vec(ds).unwrap();
        let first = open_sweep_journal(&path, &programs, &opts).unwrap();
        let (_, report) = generate_with_checkpoint(&programs, &opts, None, Some(&first));
        drop(first);

        // Simulate a crash partway through: keep the header + first half
        // of the records (complete lines), drop the rest.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let keep = 1 + (lines.len() - 1) / 2;
        let mut truncated = lines[..keep].join("\n");
        truncated.push('\n');
        std::fs::write(&path, truncated).unwrap();

        let resumed = open_sweep_journal(&path, &programs, &opts).unwrap();
        let replayed = resumed.resumed_pairs() + resumed.resumed_baselines();
        assert_eq!(replayed, keep - 1);
        assert!(resumed.resumed_pairs() < report.grid_tasks);
        let (warm, _) = generate_with_checkpoint(&programs, &opts, None, Some(&resumed));
        let total = (report.grid_tasks + report.programs) as u64;
        assert_eq!(
            resumed.recorded(),
            total - replayed as u64,
            "exactly the missing records re-priced and journalled"
        );
        assert_eq!(bytes(&warm), bytes(&baseline));

        // The journal is whole again: a third run replays everything.
        drop(resumed);
        let whole = open_sweep_journal(&path, &programs, &opts).unwrap();
        assert_eq!(whole.resumed_pairs(), report.grid_tasks);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_of_a_different_plan_is_refused() {
        let dir = cache_scratch_dir("journal-plan");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.journal");
        let programs = vec![tiny_program("p1", 1)];
        let opts = GenOptions {
            scale: SweepScale {
                n_uarch: 2,
                n_opts: 6,
            },
            seed: 46,
            extended_space: false,
            threads: 1,
        };
        drop(open_sweep_journal(&path, &programs, &opts).unwrap());
        // Any plan-changing knob — a different seed, scale, or program
        // list — must be refused with the typed mismatch.
        for bad in [
            GenOptions { seed: 47, ..opts },
            GenOptions {
                scale: SweepScale {
                    n_uarch: 3,
                    n_opts: 6,
                },
                ..opts
            },
        ] {
            assert!(matches!(
                open_sweep_journal(&path, &programs, &bad),
                Err(JournalError::PlanMismatch { .. })
            ));
        }
        let other_programs = vec![tiny_program("p2", 7)];
        assert!(matches!(
            open_sweep_journal(&path, &other_programs, &opts),
            Err(JournalError::PlanMismatch { .. })
        ));
        // Thread count and an attached profile cache are *not* part of the
        // plan: they cannot change the rows.
        let threads = GenOptions { threads: 8, ..opts };
        assert!(open_sweep_journal(&path, &programs, &threads).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn named_uarch_generation_matches_setting_sample() {
        let programs = vec![tiny_program("p1", 2)];
        let opts = GenOptions {
            scale: SweepScale {
                n_uarch: 2,
                n_opts: 6,
            },
            seed: 23,
            extended_space: false,
            threads: 1,
        };
        let sampled = generate(&programs, &opts);
        let named = [portopt_uarch::MicroArch::xscale()];
        let (ds, _) = generate_with_uarchs(&programs, &named, &opts);
        assert_eq!(ds.configs, sampled.configs, "same seed, same settings");
        assert_eq!(ds.uarchs, named.to_vec());
        assert_eq!(ds.cycles[0].len(), 1);
        assert_eq!(ds.cycles[0][0].len(), 6);
    }
}
