//! Training-data generation (§3.2): evaluate N optimisation settings on
//! M program/microarchitecture pairs and record execution times, plus the
//! `-O3` performance counters that form each pair's feature vector.
//!
//! The expensive part — compiling and *functionally profiling* each
//! (program, setting) binary — is microarchitecture-independent, so it is
//! done once and the resulting profile is priced on every configuration
//! with the fast timing model. That turns the paper's 7-million-simulation
//! sweep into `programs × settings` profiler runs plus 7 million
//! microsecond-scale model evaluations.

use portopt_ir::interp::ExecLimits;
use portopt_ir::Module;
use portopt_passes::{compile, OptConfig};
use portopt_sim::{evaluate, profile};
use portopt_uarch::{FeatureVec, MicroArch, MicroArchSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Scale of a sweep (paper scale: 35 programs × 200 μarchs × 1000 settings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepScale {
    /// Number of microarchitecture configurations to sample.
    pub n_uarch: usize,
    /// Number of optimisation settings to sample.
    pub n_opts: usize,
}

impl SweepScale {
    /// The paper's full scale (very slow on a laptop; hours).
    pub fn paper() -> Self {
        SweepScale {
            n_uarch: 200,
            n_opts: 1000,
        }
    }

    /// A laptop-friendly default preserving the experiment's shape.
    pub fn default_scale() -> Self {
        SweepScale {
            n_uarch: 24,
            n_opts: 160,
        }
    }

    /// A CI-friendly smoke scale.
    pub fn smoke() -> Self {
        SweepScale {
            n_uarch: 6,
            n_opts: 40,
        }
    }
}

/// The sweep result: everything the model and every figure needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Program names, index = program id.
    pub programs: Vec<String>,
    /// Sampled microarchitectures, index = configuration id.
    pub uarchs: Vec<MicroArch>,
    /// Sampled optimisation settings (shared across programs).
    pub configs: Vec<OptConfig>,
    /// `cycles[p][u][c]`: execution cycles of program `p` compiled with
    /// setting `c` on configuration `u`.
    pub cycles: Vec<Vec<Vec<f64>>>,
    /// `o3_cycles[p][u]`: the `-O3` baseline.
    pub o3_cycles: Vec<Vec<f64>>,
    /// `features[p][u]`: the 19-feature vector from the single `-O3` run.
    pub features: Vec<Vec<FeatureVec>>,
}

impl Dataset {
    /// Speedup of setting `c` over `-O3` for pair `(p, u)`.
    pub fn speedup(&self, p: usize, u: usize, c: usize) -> f64 {
        self.o3_cycles[p][u] / self.cycles[p][u][c]
    }

    /// Best speedup over `-O3` for pair `(p, u)` across all settings
    /// (the paper's "Best": iterative search over the sampled settings).
    pub fn best_speedup(&self, p: usize, u: usize) -> f64 {
        let best = self.cycles[p][u]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        self.o3_cycles[p][u] / best
    }

    /// Indices of the top `frac` (by speedup) settings for `(p, u)` — the
    /// "good set" Ỹ of §3.3.1 (paper: top 5 %).
    pub fn good_set(&self, p: usize, u: usize, frac: f64) -> Vec<usize> {
        let n = self.configs.len();
        let keep = ((n as f64 * frac).ceil() as usize).clamp(1, n);
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| {
            self.cycles[p][u][a]
                .partial_cmp(&self.cycles[p][u][b])
                .expect("finite cycles")
        });
        idx.truncate(keep);
        idx
    }

    /// Number of programs.
    pub fn n_programs(&self) -> usize {
        self.programs.len()
    }

    /// Number of microarchitectures.
    pub fn n_uarchs(&self) -> usize {
        self.uarchs.len()
    }
}

/// Options for dataset generation.
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Sweep scale.
    pub scale: SweepScale,
    /// Master seed (μarch sample, setting sample).
    pub seed: u64,
    /// Use the extended (§7) space with frequency/width.
    pub extended_space: bool,
    /// Worker threads for the per-setting compile+profile loop.
    pub threads: usize,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            scale: SweepScale::default_scale(),
            seed: 2009,
            extended_space: false,
            threads: 2,
        }
    }
}

const PROFILE_LIMITS: ExecLimits = ExecLimits {
    fuel: 100_000_000,
    max_depth: 2048,
};

/// Evaluates one program: compiles and profiles each setting once, prices
/// it on every configuration. Returns `(cycles[u][c], o3_cycles[u],
/// features[u])`.
type ProgramSweep = (Vec<Vec<f64>>, Vec<f64>, Vec<FeatureVec>);

fn sweep_program(
    module: &Module,
    uarchs: &[MicroArch],
    configs: &[OptConfig],
    threads: usize,
) -> ProgramSweep {
    // O3 baseline run: cycles + counters per configuration.
    let img3 = compile(module, &OptConfig::o3());
    let prof3 = profile(&img3, module, &[], PROFILE_LIMITS)
        .expect("O3 binary must run (checked by the mibench tests)");
    let mut o3_cycles = Vec::with_capacity(uarchs.len());
    let mut features = Vec::with_capacity(uarchs.len());
    for u in uarchs {
        let t = evaluate(&img3, &prof3, u);
        o3_cycles.push(t.cycles);
        features.push(FeatureVec::new(&t.counters, u));
    }

    // Per-setting sweeps, parallelised over settings.
    let n = configs.len();
    let mut cycles: Vec<Vec<f64>> = vec![vec![0.0; n]; uarchs.len()];
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<(usize, Vec<f64>)> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..threads.max(1) {
            let next = &next;
            handles.push(s.spawn(move || {
                let mut out = Vec::new();
                loop {
                    let c = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if c >= n {
                        return out;
                    }
                    let img = compile(module, &configs[c]);
                    let per_uarch: Vec<f64> = match profile(&img, module, &[], PROFILE_LIMITS) {
                        Ok(prof) => uarchs
                            .iter()
                            .map(|u| evaluate(&img, &prof, u).cycles)
                            .collect(),
                        // A setting that fails to run (fuel blow-up from a
                        // pathological unroll, say) is priced as unusable.
                        Err(_) => vec![f64::INFINITY; uarchs.len()],
                    };
                    out.push((c, per_uarch));
                }
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker"))
            .collect()
    });
    for (c, per_uarch) in results {
        for (u, cy) in per_uarch.into_iter().enumerate() {
            cycles[u][c] = cy;
        }
    }
    (cycles, o3_cycles, features)
}

/// Generates a full dataset for the given programs.
pub fn generate(programs: &[(String, Module)], opts: &GenOptions) -> Dataset {
    let space = if opts.extended_space {
        MicroArchSpace::extended()
    } else {
        MicroArchSpace::base()
    };
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let uarchs = space.sample_n(opts.scale.n_uarch, &mut rng);
    let mut rng2 = StdRng::seed_from_u64(opts.seed ^ 0xC0FFEE);
    let configs: Vec<OptConfig> = (0..opts.scale.n_opts)
        .map(|_| OptConfig::sample(&mut rng2))
        .collect();

    let mut ds = Dataset {
        programs: programs.iter().map(|(n, _)| n.clone()).collect(),
        uarchs,
        configs,
        cycles: Vec::new(),
        o3_cycles: Vec::new(),
        features: Vec::new(),
    };
    for (_, module) in programs {
        let (cycles, o3, feats) = sweep_program(module, &ds.uarchs, &ds.configs, opts.threads);
        ds.cycles.push(cycles);
        ds.o3_cycles.push(o3);
        ds.features.push(feats);
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use portopt_ir::{FuncBuilder, ModuleBuilder};

    fn tiny_program(name: &str, stride: i64) -> (String, Module) {
        let mut mb = ModuleBuilder::new(name);
        let (_, base) = mb.global("buf", 512);
        let mut b = FuncBuilder::new("main", 0);
        let p = b.iconst(base as i64);
        let acc = b.iconst(0);
        b.counted_loop(0, 400, 1, |b, i| {
            let off0 = b.mul(i, stride);
            let off = b.and(off0, 511);
            let sh = b.shl(off, 2);
            let a = b.add(p, sh);
            let v = b.load(a, 0);
            let w = b.add(v, i);
            b.store(w, a, 0);
            let t = b.add(acc, w);
            b.assign(acc, t);
        });
        b.ret(acc);
        let id = mb.add(b.finish());
        mb.entry(id);
        (name.to_string(), mb.finish())
    }

    fn tiny_dataset() -> Dataset {
        let programs = vec![tiny_program("p1", 1), tiny_program("p2", 7)];
        generate(
            &programs,
            &GenOptions {
                scale: SweepScale {
                    n_uarch: 4,
                    n_opts: 12,
                },
                seed: 5,
                extended_space: false,
                threads: 2,
            },
        )
    }

    #[test]
    fn dataset_shape() {
        let ds = tiny_dataset();
        assert_eq!(ds.n_programs(), 2);
        assert_eq!(ds.n_uarchs(), 4);
        assert_eq!(ds.configs.len(), 12);
        assert_eq!(ds.cycles[0].len(), 4);
        assert_eq!(ds.cycles[0][0].len(), 12);
        assert_eq!(ds.features[1].len(), 4);
        assert_eq!(ds.features[0][0].values.len(), portopt_uarch::N_FEATURES);
    }

    #[test]
    fn cycles_are_positive_and_best_is_best() {
        let ds = tiny_dataset();
        for p in 0..2 {
            for u in 0..4 {
                assert!(ds.o3_cycles[p][u] > 0.0);
                let best = ds.best_speedup(p, u);
                for c in 0..12 {
                    assert!(ds.cycles[p][u][c] > 0.0);
                    assert!(ds.speedup(p, u, c) <= best + 1e-12);
                }
            }
        }
    }

    #[test]
    fn good_set_contains_the_best() {
        let ds = tiny_dataset();
        let gs = ds.good_set(0, 0, 0.25);
        assert_eq!(gs.len(), 3); // ceil(12 * 0.25)
                                 // The first element is the single best setting.
        let best_c = (0..12)
            .min_by(|&a, &b| ds.cycles[0][0][a].partial_cmp(&ds.cycles[0][0][b]).unwrap())
            .unwrap();
        assert_eq!(gs[0], best_c);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_dataset();
        let b = tiny_dataset();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.o3_cycles, b.o3_cycles);
        assert_eq!(a.uarchs, b.uarchs);
    }
}
