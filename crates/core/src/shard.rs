//! Deterministic shard planning for multi-rig sweeps.
//!
//! The training sweep is embarrassingly parallel across *programs*: every
//! shard samples the same microarchitectures and settings (same seed, same
//! scale), sweeps its own slice of the program list, and the per-rig
//! [`Dataset`](crate::Dataset) files are recombined with
//! [`Dataset::merge`](crate::Dataset::merge).
//!
//! A [`ShardSpec`] assigns **contiguous** program ranges (the same split
//! rule the executor uses for its work shards). Contiguity is what makes
//! the merge exact: concatenating shard `0..count` in index order
//! reproduces the unsharded program order, so the merged dataset is
//! byte-identical to a single-rig sweep — the invariant the CI smoke job
//! asserts end to end.
//!
//! ```
//! use portopt_core::shard::ShardSpec;
//!
//! let programs = ["a", "b", "c", "d", "e"];
//! let s0 = ShardSpec::new(0, 2).unwrap();
//! let s1 = ShardSpec::new(1, 2).unwrap();
//! assert_eq!(s0.slice(&programs), &["a", "b"]);
//! assert_eq!(s1.slice(&programs), &["c", "d", "e"]);
//! // Every shard index outside 0..count is refused up front.
//! assert!(ShardSpec::new(2, 2).is_err());
//! ```

use std::ops::Range;

/// One rig's slot in an `index`-of-`count` sweep split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    index: usize,
    count: usize,
}

impl ShardSpec {
    /// Validates an `index`-of-`count` spec.
    pub fn new(index: usize, count: usize) -> Result<Self, ShardError> {
        if count == 0 {
            return Err(ShardError::ZeroShards);
        }
        if index >= count {
            return Err(ShardError::IndexOutOfRange { index, count });
        }
        Ok(ShardSpec { index, count })
    }

    /// The whole-grid spec (`0 of 1`): a single-rig sweep.
    pub fn whole() -> Self {
        ShardSpec { index: 0, count: 1 }
    }

    /// This shard's index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total number of shards in the plan.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether this spec covers the whole grid.
    pub fn is_whole(&self) -> bool {
        self.count == 1
    }

    /// The contiguous index range this shard owns out of `n` items.
    /// Ranges over all shards partition `0..n` exactly, in index order,
    /// with sizes differing by at most one.
    pub fn range(&self, n: usize) -> Range<usize> {
        let lo = n * self.index / self.count;
        let hi = n * (self.index + 1) / self.count;
        lo..hi
    }

    /// This shard's slice of `items` (possibly empty, when there are more
    /// shards than items).
    pub fn slice<'a, T>(&self, items: &'a [T]) -> &'a [T] {
        &items[self.range(items.len())]
    }
}

/// Why a [`ShardSpec`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardError {
    /// `count` was zero — there is no zero-way split.
    ZeroShards,
    /// `index` was not below `count`.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The shard count it had to be below.
        count: usize,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::ZeroShards => write!(f, "shard count must be at least 1"),
            ShardError::IndexOutOfRange { index, count } => write!(
                f,
                "shard index {index} out of range for {count} shard(s) \
                 (valid: 0..{count})"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_validated() {
        assert!(matches!(ShardSpec::new(0, 0), Err(ShardError::ZeroShards)));
        assert!(matches!(
            ShardSpec::new(3, 3),
            Err(ShardError::IndexOutOfRange { index: 3, count: 3 })
        ));
        assert!(ShardSpec::new(2, 3).is_ok());
        assert!(ShardSpec::whole().is_whole());
        assert!(!ShardSpec::new(0, 2).unwrap().is_whole());
    }

    #[test]
    fn ranges_partition_in_order_for_any_split() {
        for n in [0usize, 1, 2, 5, 7, 35, 100] {
            for count in 1..=8 {
                let mut covered = Vec::new();
                let mut sizes = Vec::new();
                for index in 0..count {
                    let r = ShardSpec::new(index, count).unwrap().range(n);
                    sizes.push(r.len());
                    covered.extend(r);
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} count={count}");
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced: n={n} count={count} {sizes:?}");
            }
        }
    }

    #[test]
    fn slices_concatenate_to_the_original() {
        let items: Vec<u32> = (0..35).collect();
        let mut rebuilt = Vec::new();
        for index in 0..4 {
            rebuilt.extend_from_slice(ShardSpec::new(index, 4).unwrap().slice(&items));
        }
        assert_eq!(rebuilt, items);
    }

    #[test]
    fn more_shards_than_items_gives_empty_slices() {
        let items = [1u8, 2];
        let counts: usize = (0..5)
            .map(|i| ShardSpec::new(i, 5).unwrap().slice(&items).len())
            .sum();
        assert_eq!(counts, items.len());
    }

    #[test]
    fn errors_display_usefully() {
        assert!(ShardError::ZeroShards.to_string().contains("at least 1"));
        let e = ShardError::IndexOutOfRange { index: 4, count: 2 };
        assert!(e.to_string().contains("index 4"), "{e}");
        assert!(e.to_string().contains("2 shard"), "{e}");
    }
}
