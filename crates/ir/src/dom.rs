//! Dominator computation (Cooper–Harvey–Kennedy iterative algorithm).

use crate::cfg::{reverse_postorder_cfg, Cfg};
use crate::function::Function;
use crate::types::BlockId;

/// Immediate-dominator tree for a function.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b]` = immediate dominator of `b`; `None` for the entry and for
    /// unreachable blocks.
    pub idom: Vec<Option<BlockId>>,
    rpo_index: Vec<usize>,
}

impl DomTree {
    /// Computes dominators for `f`.
    pub fn compute(f: &Function) -> Self {
        let cfg = Cfg::compute(f);
        Self::compute_with_cfg(f, &cfg)
    }

    /// [`DomTree::compute`] with a precomputed CFG.
    pub fn compute_with_cfg(f: &Function, cfg: &Cfg) -> Self {
        let n = f.blocks.len();
        let rpo = reverse_postorder_cfg(f, cfg);
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        let entry = f.entry();
        idom[entry.index()] = Some(entry);

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_some() {
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => Self::intersect(&idom, &rpo_index, p, cur),
                        });
                    }
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // By convention the entry has no immediate dominator.
        idom[entry.index()] = None;
        DomTree { idom, rpo_index }
    }

    fn intersect(
        idom: &[Option<BlockId>],
        rpo_index: &[usize],
        mut a: BlockId,
        mut b: BlockId,
    ) -> BlockId {
        while a != b {
            while rpo_index[a.index()] > rpo_index[b.index()] {
                a = idom[a.index()].expect("processed block has idom");
            }
            while rpo_index[b.index()] > rpo_index[a.index()] {
                b = idom[b.index()].expect("processed block has idom");
            }
        }
        a
    }

    /// Returns `true` if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_index[b.index()] == usize::MAX {
            return false; // unreachable
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::types::Pred;

    #[test]
    fn diamond_dominators() {
        let mut b = FuncBuilder::new("d", 1);
        let x = b.param(0);
        let c = b.cmp(Pred::Gt, x, 0);
        let out = b.iconst(0);
        b.if_else(c, |b| b.assign(out, 1), |b| b.assign(out, 2));
        b.ret(out);
        let f = b.finish();
        let dt = DomTree::compute(&f);
        // Entry dominates everything.
        for i in 0..f.blocks.len() as u32 {
            assert!(dt.dominates(BlockId(0), BlockId(i)));
        }
        // Neither arm dominates the join.
        assert!(!dt.dominates(BlockId(1), BlockId(3)));
        assert!(!dt.dominates(BlockId(2), BlockId(3)));
        // Join's idom is the entry.
        assert_eq!(dt.idom[3], Some(BlockId(0)));
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut b = FuncBuilder::new("l", 1);
        let n = b.param(0);
        let acc = b.iconst(0);
        b.counted_loop(0, n, 1, |b, i| {
            let t = b.add(acc, i);
            b.assign(acc, t);
        });
        b.ret(acc);
        let f = b.finish();
        let dt = DomTree::compute(&f);
        // Block layout from counted_loop: 0=entry, 1=header, 2=body, 3=exit.
        assert!(dt.dominates(BlockId(1), BlockId(2)));
        assert!(dt.dominates(BlockId(1), BlockId(3)));
        assert!(!dt.dominates(BlockId(2), BlockId(3)));
    }
}
