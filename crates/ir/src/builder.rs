//! Ergonomic builders for constructing IR programs.
//!
//! The 35 benchmark programs in `portopt-mibench` are written against this
//! DSL, so it favours terseness: every arithmetic helper takes
//! `impl Into<Operand>` and returns the freshly defined [`VReg`].
//!
//! # Examples
//!
//! ```
//! use portopt_ir::{FuncBuilder, Pred};
//!
//! // fn sum_to(n) { s = 0; for i in 0..n { s += i } return s }
//! let mut b = FuncBuilder::new("sum_to", 1);
//! let n = b.param(0);
//! let s = b.iconst(0);
//! b.counted_loop(0, n, 1, |b, i| {
//!     let t = b.add(s, i);
//!     b.assign(s, t);
//! });
//! b.ret(s);
//! let f = b.finish();
//! assert!(f.blocks.len() >= 3);
//! ```

use crate::function::{Function, Global, Module};
use crate::inst::Inst;
use crate::types::{BinOp, BlockId, FuncId, Operand, Pred, VReg};

/// Builder for a single [`Function`].
#[derive(Debug)]
pub struct FuncBuilder {
    f: Function,
    cur: BlockId,
}

impl FuncBuilder {
    /// Starts building a function with `nparams` parameters.
    pub fn new(name: impl Into<String>, nparams: usize) -> Self {
        FuncBuilder {
            f: Function::new(name, nparams),
            cur: BlockId(0),
        }
    }

    /// Marks the function as cold (never inlined).
    pub fn set_cold(&mut self) {
        self.f.cold = true;
    }

    /// The `i`-th parameter register.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> VReg {
        self.f.params[i]
    }

    /// Creates a new (empty, unconnected) block.
    pub fn block(&mut self) -> BlockId {
        self.f.new_block()
    }

    /// Redirects subsequent instructions to `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// The block currently being appended to.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    /// Appends a raw instruction to the current block.
    pub fn push(&mut self, inst: Inst) {
        self.f.block_mut(self.cur).insts.push(inst);
    }

    /// Allocates a fresh register (no instruction emitted).
    pub fn fresh(&mut self) -> VReg {
        self.f.new_vreg()
    }

    /// Materialises a constant: `dst = v`.
    pub fn iconst(&mut self, v: i64) -> VReg {
        let dst = self.f.new_vreg();
        self.push(Inst::Copy {
            dst,
            src: Operand::Imm(v),
        });
        dst
    }

    /// Emits `dst = src` into an existing register (loop-carried updates).
    pub fn assign(&mut self, dst: VReg, src: impl Into<Operand>) {
        self.push(Inst::Copy {
            dst,
            src: src.into(),
        });
    }

    /// Emits a binary operation into a fresh register.
    pub fn bin(&mut self, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        let dst = self.f.new_vreg();
        self.push(Inst::Bin {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Emits a comparison into a fresh register.
    pub fn cmp(&mut self, pred: Pred, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        let dst = self.f.new_vreg();
        self.push(Inst::Cmp {
            pred,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Loads `memory[addr + offset]`.
    pub fn load(&mut self, addr: VReg, offset: i64) -> VReg {
        let dst = self.f.new_vreg();
        self.push(Inst::Load { dst, addr, offset });
        dst
    }

    /// Stores `src` to `memory[addr + offset]`.
    pub fn store(&mut self, src: impl Into<Operand>, addr: VReg, offset: i64) {
        self.push(Inst::Store {
            src: src.into(),
            addr,
            offset,
        });
    }

    /// Calls `func`, capturing the return value.
    pub fn call(&mut self, func: FuncId, args: &[Operand]) -> VReg {
        let dst = self.f.new_vreg();
        self.push(Inst::Call {
            func,
            args: args.to_vec(),
            dst: Some(dst),
        });
        dst
    }

    /// Calls `func`, discarding any return value.
    pub fn call_void(&mut self, func: FuncId, args: &[Operand]) {
        self.push(Inst::Call {
            func,
            args: args.to_vec(),
            dst: None,
        });
    }

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.push(Inst::Br { target });
    }

    /// Conditional branch on `cond != 0`.
    pub fn cond_br(&mut self, cond: VReg, then_: BlockId, else_: BlockId) {
        self.push(Inst::CondBr { cond, then_, else_ });
    }

    /// Returns a value.
    pub fn ret(&mut self, val: impl Into<Operand>) {
        self.push(Inst::Ret {
            val: Some(val.into()),
        });
    }

    /// Returns without a value.
    pub fn ret_void(&mut self) {
        self.push(Inst::Ret { val: None });
    }

    /// Builds a counted loop `for i in start..end step by step`, running
    /// `body` with the induction register. Afterwards the builder points at
    /// the loop's exit block.
    ///
    /// The loop is emitted bottom-tested after an initial guard, the shape
    /// gcc produces for `for` loops, so an empty range executes zero
    /// iterations.
    pub fn counted_loop(
        &mut self,
        start: impl Into<Operand>,
        end: impl Into<Operand>,
        step: i64,
        body: impl FnOnce(&mut Self, VReg),
    ) -> VReg {
        let end = end.into();
        let i = self.f.new_vreg();
        let start = start.into();
        self.assign(i, start);
        let header = self.block();
        let body_b = self.block();
        let exit = self.block();
        self.br(header);

        self.switch_to(header);
        let c = self.cmp(Pred::Lt, i, end);
        self.cond_br(c, body_b, exit);

        self.switch_to(body_b);
        body(self, i);
        let next = self.bin(BinOp::Add, i, step);
        self.assign(i, next);
        self.br(header);

        self.switch_to(exit);
        i
    }

    /// Builds a while loop: `cond` is re-evaluated in a header block each
    /// iteration; `body` runs while it is non-zero. Afterwards the builder
    /// points at the exit block.
    pub fn while_loop(
        &mut self,
        cond: impl FnOnce(&mut Self) -> VReg,
        body: impl FnOnce(&mut Self),
    ) {
        let header = self.block();
        let body_b = self.block();
        let exit = self.block();
        self.br(header);

        self.switch_to(header);
        let c = cond(self);
        self.cond_br(c, body_b, exit);

        self.switch_to(body_b);
        body(self);
        self.br(header);

        self.switch_to(exit);
    }

    /// Builds an if/else; afterwards the builder points at the join block.
    pub fn if_else(
        &mut self,
        cond: VReg,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) {
        let t = self.block();
        let e = self.block();
        let join = self.block();
        self.cond_br(cond, t, e);

        self.switch_to(t);
        then_body(self);
        self.br(join);

        self.switch_to(e);
        else_body(self);
        self.br(join);

        self.switch_to(join);
    }

    /// Builds an if without an else; afterwards the builder points at the
    /// join block.
    pub fn if_then(&mut self, cond: VReg, then_body: impl FnOnce(&mut Self)) {
        let t = self.block();
        let join = self.block();
        self.cond_br(cond, t, join);

        self.switch_to(t);
        then_body(self);
        self.br(join);

        self.switch_to(join);
    }

    /// Finishes the function.
    pub fn finish(self) -> Function {
        self.f
    }

    // --- arithmetic sugar -------------------------------------------------

    /// `a + b`.
    pub fn add(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Add, a, b)
    }
    /// `a - b`.
    pub fn sub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Sub, a, b)
    }
    /// `a * b` (MAC unit).
    pub fn mul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Mul, a, b)
    }
    /// `a / b` (0 when `b == 0`).
    pub fn div(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Div, a, b)
    }
    /// `a % b` (0 when `b == 0`).
    pub fn rem(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Rem, a, b)
    }
    /// `a & b`.
    pub fn and(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::And, a, b)
    }
    /// `a | b`.
    pub fn or(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Or, a, b)
    }
    /// `a ^ b`.
    pub fn xor(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Xor, a, b)
    }
    /// `a << b`.
    pub fn shl(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Shl, a, b)
    }
    /// `a >> b` (logical).
    pub fn shr(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Shr, a, b)
    }
    /// `a >> b` (arithmetic).
    pub fn sar(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Sar, a, b)
    }
}

/// Builder for a whole [`Module`].
#[derive(Debug)]
pub struct ModuleBuilder {
    m: Module,
}

impl ModuleBuilder {
    /// Starts building a module.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            m: Module::new(name),
        }
    }

    /// Reserves a function slot so mutually recursive code can reference it
    /// before its body exists. The slot holds a trivial `ret` body until
    /// [`define`](Self::define) replaces it.
    pub fn declare(&mut self, name: impl Into<String>, nparams: usize) -> FuncId {
        let mut f = Function::new(name, nparams);
        f.block_mut(BlockId(0)).insts.push(Inst::Ret { val: None });
        self.m.add_func(f)
    }

    /// Replaces a declared slot with a finished function body.
    ///
    /// # Panics
    /// Panics if `id` was not previously declared.
    pub fn define(&mut self, id: FuncId, f: Function) {
        self.m.funcs[id.index()] = f;
    }

    /// Adds a finished function, returning its id.
    pub fn add(&mut self, f: Function) -> FuncId {
        self.m.add_func(f)
    }

    /// Adds a zero-initialised global; returns `(index, byte base address)`.
    pub fn global(&mut self, name: impl Into<String>, words: u32) -> (usize, u32) {
        let idx = self.m.add_global(name, words);
        let base = self.m.global_base(idx);
        (idx, base)
    }

    /// Adds a global with a static initialiser; returns `(index, base)`.
    pub fn global_init(
        &mut self,
        name: impl Into<String>,
        words: u32,
        init: Vec<i64>,
    ) -> (usize, u32) {
        assert!(
            init.len() <= words as usize,
            "initialiser longer than global"
        );
        let idx = self.m.add_global(name, words);
        self.m.globals[idx] = Global {
            name: self.m.globals[idx].name.clone(),
            words,
            init,
        };
        let base = self.m.global_base(idx);
        (idx, base)
    }

    /// Sets the entry function.
    pub fn entry(&mut self, id: FuncId) {
        self.m.entry = id;
    }

    /// Finishes the module.
    pub fn finish(self) -> Module {
        self.m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_module;

    #[test]
    fn counted_loop_shape() {
        let mut b = FuncBuilder::new("f", 1);
        let n = b.param(0);
        let acc = b.iconst(0);
        b.counted_loop(0, n, 1, |b, i| {
            let t = b.add(acc, i);
            b.assign(acc, t);
        });
        b.ret(acc);
        let f = b.finish();
        // entry + header + body + exit
        assert_eq!(f.blocks.len(), 4);
        let mut m = Module::new("t");
        m.add_func(f);
        verify_module(&m).unwrap();
    }

    #[test]
    fn if_else_joins() {
        let mut b = FuncBuilder::new("f", 1);
        let x = b.param(0);
        let c = b.cmp(Pred::Gt, x, 0);
        let out = b.iconst(0);
        b.if_else(c, |b| b.assign(out, 1), |b| b.assign(out, -1));
        b.ret(out);
        let f = b.finish();
        assert_eq!(f.blocks.len(), 4);
        let mut m = Module::new("t");
        m.add_func(f);
        verify_module(&m).unwrap();
    }

    #[test]
    fn while_loop_shape() {
        let mut b = FuncBuilder::new("f", 1);
        let x = b.param(0);
        b.while_loop(
            |b| b.cmp(Pred::Gt, x, 0),
            |b| {
                let t = b.sub(x, 1);
                b.assign(x, t);
            },
        );
        b.ret(x);
        let f = b.finish();
        let mut m = Module::new("t");
        m.add_func(f);
        verify_module(&m).unwrap();
    }

    #[test]
    fn declare_define_recursion() {
        let mut mb = ModuleBuilder::new("t");
        let fid = mb.declare("fib", 1);
        let mut b = FuncBuilder::new("fib", 1);
        let n = b.param(0);
        let c = b.cmp(Pred::Lt, n, 2);
        let out = b.fresh();
        b.if_else(
            c,
            |b| b.assign(out, n),
            |b| {
                let n1 = b.sub(n, 1);
                let a = b.call(fid, &[n1.into()]);
                let n2 = b.sub(n, 2);
                let c2 = b.call(fid, &[n2.into()]);
                let s = b.add(a, c2);
                b.assign(out, s);
            },
        );
        b.ret(out);
        mb.define(fid, b.finish());
        mb.entry(fid);
        let m = mb.finish();
        verify_module(&m).unwrap();
    }

    #[test]
    fn global_init_checks_length() {
        let mut mb = ModuleBuilder::new("t");
        let (_, base) = mb.global_init("tab", 4, vec![1, 2, 3]);
        assert_eq!(base, Module::DATA_BASE);
        let m = mb.finish();
        assert_eq!(m.globals[0].init, vec![1, 2, 3]);
    }
}
