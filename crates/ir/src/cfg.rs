//! Control-flow graph utilities: successor/predecessor maps and orderings.

use crate::function::Function;
use crate::types::BlockId;

/// Precomputed successor and predecessor lists for a function's CFG.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// `succs[b]` = blocks reachable in one step from `b`.
    pub succs: Vec<Vec<BlockId>>,
    /// `preds[b]` = blocks branching to `b`.
    pub preds: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Builds the CFG of `f`.
    pub fn compute(f: &Function) -> Self {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (id, b) in f.iter_blocks() {
            for s in b.successors() {
                succs[id.index()].push(s);
                preds[s.index()].push(id);
            }
        }
        Cfg { succs, preds }
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Returns `true` when the CFG has no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }
}

/// Blocks of `f` in reverse postorder from the entry.
///
/// Unreachable blocks are omitted.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let cfg = Cfg::compute(f);
    reverse_postorder_cfg(f, &cfg)
}

/// [`reverse_postorder`] with a precomputed CFG.
pub fn reverse_postorder_cfg(f: &Function, cfg: &Cfg) -> Vec<BlockId> {
    let n = f.blocks.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with an explicit stack of (block, next-successor-index).
    let mut stack: Vec<(BlockId, usize)> = Vec::new();
    let entry = f.entry();
    visited[entry.index()] = true;
    stack.push((entry, 0));
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let ss = cfg.succs(b);
        if *i < ss.len() {
            let s = ss[*i];
            *i += 1;
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// The set of blocks reachable from the entry.
pub fn reachable(f: &Function) -> Vec<bool> {
    let order = reverse_postorder(f);
    let mut r = vec![false; f.blocks.len()];
    for b in order {
        r[b.index()] = true;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::types::Pred;

    fn diamond() -> Function {
        let mut b = FuncBuilder::new("d", 1);
        let x = b.param(0);
        let c = b.cmp(Pred::Gt, x, 0);
        let out = b.iconst(0);
        b.if_else(c, |b| b.assign(out, 1), |b| b.assign(out, 2));
        b.ret(out);
        b.finish()
    }

    #[test]
    fn diamond_cfg() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.succs(BlockId(0)).len(), 2);
        assert_eq!(cfg.preds(BlockId(3)).len(), 2); // join has two preds
        assert_eq!(cfg.preds(BlockId(0)).len(), 0);
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_order() {
        let f = diamond();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], BlockId(0));
        // entry before branches, branches before join
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(BlockId(0)) < pos(BlockId(1)));
        assert!(pos(BlockId(0)) < pos(BlockId(2)));
        assert!(pos(BlockId(1)) < pos(BlockId(3)));
        assert!(pos(BlockId(2)) < pos(BlockId(3)));
    }

    #[test]
    fn unreachable_blocks_are_dropped() {
        let mut f = diamond();
        let dead = f.new_block();
        f.block_mut(dead).insts.push(crate::Inst::Ret { val: None });
        let rpo = reverse_postorder(&f);
        assert!(!rpo.contains(&dead));
        let r = reachable(&f);
        assert!(!r[dead.index()]);
        assert!(r[0]);
    }
}
