//! # portopt-ir
//!
//! The intermediate representation underneath the `portopt` portable
//! optimising compiler — a reproduction of Dubach et al.,
//! *Portable Compiler Optimisation Across Embedded Programs and
//! Microarchitectures using Machine Learning* (MICRO 2009).
//!
//! The IR is a conventional register-machine CFG form, deliberately close to
//! the RTL level at which gcc 4.2 applies the optimisation passes studied in
//! the paper: virtual registers, explicit loads/stores into a flat byte
//! address space, basic blocks with a single terminator, and direct calls.
//!
//! Programs are constructed with the [`FuncBuilder`]/[`ModuleBuilder`] DSL:
//!
//! ```
//! use portopt_ir::{FuncBuilder, ModuleBuilder, verify_module};
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let (_, table) = mb.global("table", 64);
//! let mut b = FuncBuilder::new("main", 0);
//! let base = b.iconst(table as i64);
//! let acc = b.iconst(0);
//! b.counted_loop(0, 64, 1, |b, i| {
//!     let off = b.shl(i, 2);
//!     let addr = b.add(base, off);
//!     let v = b.load(addr, 0);
//!     let t = b.add(acc, v);
//!     b.assign(acc, t);
//! });
//! b.ret(acc);
//! let id = mb.add(b.finish());
//! mb.entry(id);
//! let module = mb.finish();
//! verify_module(&module).unwrap();
//! ```
//!
//! Analyses ([`Cfg`], [`DomTree`], [`LoopForest`], [`Liveness`]) are plain
//! functions over immutable IR so the passes in `portopt-passes` can
//! recompute them cheaply after each transformation.

#![warn(missing_docs)]

mod builder;
mod cfg;
mod dom;
pub mod fingerprint;
mod function;
mod inst;
pub mod interp;
mod liveness;
mod loops;
mod types;
pub mod verify;

pub use builder::{FuncBuilder, ModuleBuilder};
pub use cfg::{reachable, reverse_postorder, reverse_postorder_cfg, Cfg};
pub use dom::DomTree;
pub use fingerprint::StableHasher;
pub use function::{Block, Function, Global, GlobalAddr, Module};
pub use inst::Inst;
pub use liveness::{BitSet, Liveness};
pub use loops::{Loop, LoopForest};
pub use types::{BinOp, BlockId, FuncId, Operand, Pred, VReg};
pub use verify::{calls, module_stats, verify_function, verify_module, ModuleStats, VerifyError};
