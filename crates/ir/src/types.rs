//! Core identifier and operand types for the portopt IR.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A virtual register.
///
/// Functions may use an unbounded number of virtual registers; the register
/// allocator in `portopt-passes` later maps them onto the target's physical
/// register file, inserting spill code where the demand exceeds supply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VReg(pub u32);

impl VReg {
    /// Returns the raw index of this register.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A basic-block identifier, local to a [`Function`](crate::Function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Returns the raw index of this block.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A function identifier, local to a [`Module`](crate::Module).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Returns the raw index of this function.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// An instruction operand: either a virtual register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// The value held by a virtual register.
    Reg(VReg),
    /// A constant, sign-extended to 64 bits.
    Imm(i64),
}

impl Operand {
    /// Returns the register if this operand is one.
    #[inline]
    pub fn as_reg(self) -> Option<VReg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// Returns the immediate value if this operand is one.
    #[inline]
    pub fn as_imm(self) -> Option<i64> {
        match self {
            Operand::Reg(_) => None,
            Operand::Imm(v) => Some(v),
        }
    }

    /// Returns `true` when the operand is an immediate.
    #[inline]
    pub fn is_imm(self) -> bool {
        matches!(self, Operand::Imm(_))
    }
}

impl From<VReg> for Operand {
    fn from(r: VReg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Binary ALU operations.
///
/// The split between plain ALU, multiplier (`Mul`/`MulAdd`) and shifter
/// operations mirrors the XScale functional units so the simulator can report
/// the per-unit usage counters of Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (executes on the MAC unit).
    Mul,
    /// Signed division (no hardware divider: multi-cycle ALU sequence).
    Div,
    /// Signed remainder (multi-cycle, like [`BinOp::Div`]).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Logical shift left (shifter unit).
    Shl,
    /// Logical shift right (shifter unit).
    Shr,
    /// Arithmetic shift right (shifter unit).
    Sar,
}

impl BinOp {
    /// All binary operations, in a fixed order.
    pub const ALL: [BinOp; 11] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Sar,
    ];

    /// Returns `true` for operations executed by the multiply-accumulate unit.
    #[inline]
    pub fn uses_mac(self) -> bool {
        matches!(self, BinOp::Mul)
    }

    /// Returns `true` for operations executed by the barrel shifter.
    #[inline]
    pub fn uses_shifter(self) -> bool {
        matches!(self, BinOp::Shl | BinOp::Shr | BinOp::Sar)
    }

    /// Returns `true` for multi-cycle operations (division and remainder).
    #[inline]
    pub fn is_long_latency(self) -> bool {
        matches!(self, BinOp::Div | BinOp::Rem)
    }

    /// Returns `true` if `op(a, b) == op(b, a)` for all inputs.
    #[inline]
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }

    /// Evaluates the operation on two 64-bit values with wrapping semantics.
    ///
    /// Division and remainder by zero yield 0, and `i64::MIN / -1` wraps, so
    /// that compile-time folding and the interpreter agree on every input.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => ((a as u64).wrapping_shr((b & 63) as u32)) as i64,
            BinOp::Sar => a.wrapping_shr((b & 63) as u32),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Sar => "sar",
        };
        f.write_str(s)
    }
}

/// Comparison predicates for [`Inst::Cmp`](crate::Inst::Cmp).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    ULt,
    /// Unsigned greater-or-equal.
    UGe,
}

impl Pred {
    /// All predicates, in a fixed order.
    pub const ALL: [Pred; 8] = [
        Pred::Eq,
        Pred::Ne,
        Pred::Lt,
        Pred::Le,
        Pred::Gt,
        Pred::Ge,
        Pred::ULt,
        Pred::UGe,
    ];

    /// Evaluates the predicate, returning 1 for true and 0 for false.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> i64 {
        let r = match self {
            Pred::Eq => a == b,
            Pred::Ne => a != b,
            Pred::Lt => a < b,
            Pred::Le => a <= b,
            Pred::Gt => a > b,
            Pred::Ge => a >= b,
            Pred::ULt => (a as u64) < (b as u64),
            Pred::UGe => (a as u64) >= (b as u64),
        };
        r as i64
    }

    /// Returns the predicate with operands swapped (`a p b == b p.swap() a`).
    #[inline]
    pub fn swapped(self) -> Pred {
        match self {
            Pred::Eq => Pred::Eq,
            Pred::Ne => Pred::Ne,
            Pred::Lt => Pred::Gt,
            Pred::Le => Pred::Ge,
            Pred::Gt => Pred::Lt,
            Pred::Ge => Pred::Le,
            Pred::ULt => Pred::UGe, // note: not a true swap; unsigned pair is inverse-based
            Pred::UGe => Pred::ULt,
        }
    }

    /// Returns the logical negation of the predicate.
    #[inline]
    pub fn negated(self) -> Pred {
        match self {
            Pred::Eq => Pred::Ne,
            Pred::Ne => Pred::Eq,
            Pred::Lt => Pred::Ge,
            Pred::Le => Pred::Gt,
            Pred::Gt => Pred::Le,
            Pred::Ge => Pred::Lt,
            Pred::ULt => Pred::UGe,
            Pred::UGe => Pred::ULt,
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Pred::Eq => "eq",
            Pred::Ne => "ne",
            Pred::Lt => "lt",
            Pred::Le => "le",
            Pred::Gt => "gt",
            Pred::Ge => "ge",
            Pred::ULt => "ult",
            Pred::UGe => "uge",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_wraps() {
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(BinOp::Mul.eval(i64::MAX, 2), -2);
        assert_eq!(BinOp::Div.eval(5, 0), 0);
        assert_eq!(BinOp::Rem.eval(5, 0), 0);
        assert_eq!(BinOp::Div.eval(i64::MIN, -1), i64::MIN);
    }

    #[test]
    fn binop_shift_masks_amount() {
        assert_eq!(BinOp::Shl.eval(1, 64), 1);
        assert_eq!(BinOp::Shl.eval(1, 65), 2);
        assert_eq!(BinOp::Shr.eval(-1, 1), i64::MAX);
        assert_eq!(BinOp::Sar.eval(-2, 1), -1);
    }

    #[test]
    fn binop_commutativity_matches_eval() {
        for op in BinOp::ALL {
            if op.is_commutative() {
                for (a, b) in [(3, 7), (-9, 4), (i64::MAX, 2)] {
                    assert_eq!(op.eval(a, b), op.eval(b, a), "{op} not commutative");
                }
            }
        }
    }

    #[test]
    fn pred_eval_and_negation() {
        for p in Pred::ALL {
            for (a, b) in [(1, 2), (2, 1), (3, 3), (-1, 1), (1, -1)] {
                assert_eq!(
                    p.eval(a, b),
                    1 - p.negated().eval(a, b),
                    "{p} negation failed on ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn pred_unsigned_treats_negative_as_large() {
        assert_eq!(Pred::ULt.eval(-1, 1), 0);
        assert_eq!(Pred::UGe.eval(-1, 1), 1);
        assert_eq!(Pred::Lt.eval(-1, 1), 1);
    }

    #[test]
    fn operand_conversions() {
        let r = VReg(3);
        assert_eq!(Operand::from(r).as_reg(), Some(r));
        assert_eq!(Operand::from(42i64).as_imm(), Some(42));
        assert!(Operand::from(0i64).is_imm());
        assert!(!Operand::from(r).is_imm());
    }

    #[test]
    fn display_formats() {
        assert_eq!(VReg(7).to_string(), "v7");
        assert_eq!(BlockId(2).to_string(), "b2");
        assert_eq!(FuncId(1).to_string(), "f1");
        assert_eq!(Operand::Reg(VReg(1)).to_string(), "v1");
        assert_eq!(Operand::Imm(-3).to_string(), "-3");
        assert_eq!(BinOp::Shl.to_string(), "shl");
        assert_eq!(Pred::UGe.to_string(), "uge");
    }
}
