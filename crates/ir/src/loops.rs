//! Natural-loop detection from back edges.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::function::Function;
use crate::types::BlockId;

/// A natural loop: header plus the set of blocks that reach the back edge.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (target of the back edge, dominates all body blocks).
    pub header: BlockId,
    /// All blocks in the loop, header included, in ascending id order.
    pub blocks: Vec<BlockId>,
    /// Sources of back edges into the header (usually the latch block).
    pub latches: Vec<BlockId>,
    /// Nesting depth: 1 for outermost loops.
    pub depth: u32,
}

impl Loop {
    /// Returns `true` if `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.binary_search(&b).is_ok()
    }
}

/// All natural loops of a function, outermost first.
#[derive(Debug, Clone)]
pub struct LoopForest {
    /// Loops sorted by (depth, header id).
    pub loops: Vec<Loop>,
    /// `depth[b]` = nesting depth of block `b` (0 = not in any loop).
    pub depth: Vec<u32>,
}

impl LoopForest {
    /// Detects the natural loops of `f`.
    pub fn compute(f: &Function) -> Self {
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute_with_cfg(f, &cfg);
        Self::compute_with(f, &cfg, &dt)
    }

    /// [`LoopForest::compute`] with precomputed CFG and dominators.
    pub fn compute_with(f: &Function, cfg: &Cfg, dt: &DomTree) -> Self {
        let n = f.blocks.len();
        // Find back edges: s -> h where h dominates s. Merge loops sharing a
        // header (e.g. `continue` produces multiple latches).
        let mut by_header: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (bi, block) in f.iter_blocks() {
            for s in block.successors() {
                if dt.dominates(s, bi) {
                    by_header[s.index()].push(bi);
                }
            }
        }

        let mut loops = Vec::new();
        for h in 0..n {
            if by_header[h].is_empty() {
                continue;
            }
            let header = BlockId(h as u32);
            // Classic natural-loop body collection: walk predecessors from
            // each latch until the header.
            let mut in_loop = vec![false; n];
            in_loop[h] = true;
            let mut stack: Vec<BlockId> = by_header[h].clone();
            for &l in &by_header[h] {
                in_loop[l.index()] = true;
            }
            while let Some(b) = stack.pop() {
                if b == header {
                    continue;
                }
                for &p in cfg.preds(b) {
                    if !in_loop[p.index()] {
                        in_loop[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
            let blocks: Vec<BlockId> = (0..n as u32)
                .map(BlockId)
                .filter(|b| in_loop[b.index()])
                .collect();
            loops.push(Loop {
                header,
                blocks,
                latches: by_header[h].clone(),
                depth: 0,
            });
        }

        // Depth: number of loops containing each block; loop depth = depth of
        // its header.
        let mut depth = vec![0u32; n];
        for l in &loops {
            for b in &l.blocks {
                depth[b.index()] += 1;
            }
        }
        for l in &mut loops {
            l.depth = depth[l.header.index()];
        }
        loops.sort_by_key(|l| (l.depth, l.header));
        LoopForest { loops, depth }
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .max_by_key(|l| l.depth)
    }

    /// Nesting depth of block `b` (0 = straight-line code).
    pub fn block_depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;

    #[test]
    fn single_loop_detected() {
        let mut b = FuncBuilder::new("l", 1);
        let n = b.param(0);
        let acc = b.iconst(0);
        b.counted_loop(0, n, 1, |b, i| {
            let t = b.add(acc, i);
            b.assign(acc, t);
        });
        b.ret(acc);
        let f = b.finish();
        let lf = LoopForest::compute(&f);
        assert_eq!(lf.loops.len(), 1);
        let l = &lf.loops[0];
        assert_eq!(l.header, BlockId(1));
        assert!(l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(0)));
        assert!(!l.contains(BlockId(3)));
        assert_eq!(l.depth, 1);
        assert_eq!(lf.block_depth(BlockId(2)), 1);
        assert_eq!(lf.block_depth(BlockId(0)), 0);
    }

    #[test]
    fn nested_loops_have_increasing_depth() {
        let mut b = FuncBuilder::new("n", 1);
        let n = b.param(0);
        let acc = b.iconst(0);
        b.counted_loop(0, n, 1, |b, _i| {
            b.counted_loop(0, n, 1, |b, j| {
                let t = b.add(acc, j);
                b.assign(acc, t);
            });
        });
        b.ret(acc);
        let f = b.finish();
        let lf = LoopForest::compute(&f);
        assert_eq!(lf.loops.len(), 2);
        assert_eq!(lf.loops[0].depth, 1);
        assert_eq!(lf.loops[1].depth, 2);
        // Outer loop contains inner loop's header.
        assert!(lf.loops[0].contains(lf.loops[1].header));
        // Innermost-containing resolves to the depth-2 loop for inner body.
        let inner_body = lf.loops[1].blocks.last().copied().unwrap();
        assert_eq!(lf.innermost_containing(inner_body).unwrap().depth, 2);
    }

    #[test]
    fn no_loops_in_straight_line() {
        let mut b = FuncBuilder::new("s", 1);
        let x = b.param(0);
        let y = b.add(x, 1);
        b.ret(y);
        let f = b.finish();
        let lf = LoopForest::compute(&f);
        assert!(lf.loops.is_empty());
    }
}
