//! The portopt instruction set.

use crate::types::{BinOp, BlockId, FuncId, Operand, Pred, VReg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One IR instruction.
///
/// Every basic block ends with exactly one *terminator* ([`Inst::Br`],
/// [`Inst::CondBr`] or [`Inst::Ret`]); terminators never appear elsewhere.
/// The [verifier](crate::verify) enforces this.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Inst {
    /// `dst = op(a, b)` with wrapping semantics.
    Bin {
        /// The operation.
        op: BinOp,
        /// Destination register.
        dst: VReg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = (a pred b) ? 1 : 0`.
    Cmp {
        /// The comparison predicate.
        pred: Pred,
        /// Destination register.
        dst: VReg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = src` (also materialises constants when `src` is immediate).
    Copy {
        /// Destination register.
        dst: VReg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = memory[addr + offset]` (one 4-byte word).
    Load {
        /// Destination register.
        dst: VReg,
        /// Base address register (byte address).
        addr: VReg,
        /// Constant byte offset added to the base.
        offset: i64,
    },
    /// `memory[addr + offset] = src` (one 4-byte word).
    Store {
        /// Value to store.
        src: Operand,
        /// Base address register (byte address).
        addr: VReg,
        /// Constant byte offset added to the base.
        offset: i64,
    },
    /// Call a function in the same module.
    Call {
        /// Callee.
        func: FuncId,
        /// Argument operands, matched positionally to the callee's params.
        args: Vec<Operand>,
        /// Register receiving the return value, if used.
        dst: Option<VReg>,
    },
    /// Unconditional branch.
    Br {
        /// Jump target.
        target: BlockId,
    },
    /// Conditional branch: non-zero `cond` goes to `then_`, zero to `else_`.
    CondBr {
        /// Condition register.
        cond: VReg,
        /// Target when `cond != 0`.
        then_: BlockId,
        /// Target when `cond == 0`.
        else_: BlockId,
    },
    /// Return from the current function.
    Ret {
        /// Returned value, if the caller expects one.
        val: Option<Operand>,
    },
    /// `dst = frame[slot]` — reload from the current stack frame.
    ///
    /// Emitted by the register allocator (spill reloads, callee-save
    /// restores); never produced by the builder DSL.
    FrameLoad {
        /// Destination register.
        dst: VReg,
        /// Frame slot index (4-byte slots from the frame base).
        slot: u32,
    },
    /// `frame[slot] = src` — spill to the current stack frame.
    FrameStore {
        /// Value to spill.
        src: Operand,
        /// Frame slot index.
        slot: u32,
    },
}

impl Inst {
    /// Returns `true` for block terminators.
    #[inline]
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Br { .. } | Inst::CondBr { .. } | Inst::Ret { .. }
        )
    }

    /// Returns the register defined by this instruction, if any.
    #[inline]
    pub fn def(&self) -> Option<VReg> {
        match self {
            Inst::Bin { dst, .. } | Inst::Cmp { dst, .. } | Inst::Copy { dst, .. } => Some(*dst),
            Inst::Load { dst, .. } | Inst::FrameLoad { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Invokes `f` for every register read by this instruction.
    pub fn for_each_use(&self, mut f: impl FnMut(VReg)) {
        let mut op = |o: &Operand| {
            if let Operand::Reg(r) = o {
                f(*r);
            }
        };
        match self {
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                op(a);
                op(b);
            }
            Inst::Copy { src, .. } => op(src),
            Inst::Load { addr, .. } => f(*addr),
            Inst::Store { src, addr, .. } => {
                op(src);
                f(*addr);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    op(a);
                }
            }
            Inst::Br { .. } => {}
            Inst::CondBr { cond, .. } => f(*cond),
            Inst::Ret { val } => {
                if let Some(v) = val {
                    op(v);
                }
            }
            Inst::FrameLoad { .. } => {}
            Inst::FrameStore { src, .. } => op(src),
        }
    }

    /// Collects the registers read by this instruction.
    pub fn uses(&self) -> Vec<VReg> {
        let mut v = Vec::new();
        self.for_each_use(|r| v.push(r));
        v
    }

    /// Rewrites every register *use* through `f` (definitions are untouched).
    pub fn map_uses(&mut self, mut f: impl FnMut(VReg) -> VReg) {
        let mut op = |o: &mut Operand| {
            if let Operand::Reg(r) = o {
                *r = f(*r);
            }
        };
        match self {
            Inst::Bin { a, b, .. } | Inst::Cmp { a, b, .. } => {
                op(a);
                op(b);
            }
            Inst::Copy { src, .. } => op(src),
            Inst::Load { addr, .. } => *addr = f(*addr),
            Inst::Store { src, addr, .. } => {
                op(src);
                *addr = f(*addr);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    op(a);
                }
            }
            Inst::Br { .. } => {}
            Inst::CondBr { cond, .. } => *cond = f(*cond),
            Inst::Ret { val } => {
                if let Some(v) = val {
                    op(v);
                }
            }
            Inst::FrameLoad { .. } => {}
            Inst::FrameStore { src, .. } => op(src),
        }
    }

    /// Rewrites the defined register through `f`, if there is one.
    pub fn map_def(&mut self, mut f: impl FnMut(VReg) -> VReg) {
        match self {
            Inst::Bin { dst, .. } | Inst::Cmp { dst, .. } | Inst::Copy { dst, .. } => {
                *dst = f(*dst)
            }
            Inst::Load { dst, .. } | Inst::FrameLoad { dst, .. } => *dst = f(*dst),
            Inst::Call { dst, .. } => {
                if let Some(d) = dst {
                    *d = f(*d);
                }
            }
            _ => {}
        }
    }

    /// Rewrites branch targets through `f`.
    pub fn map_targets(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Inst::Br { target } => *target = f(*target),
            Inst::CondBr { then_, else_, .. } => {
                *then_ = f(*then_);
                *else_ = f(*else_);
            }
            _ => {}
        }
    }

    /// Returns `true` for instructions with no side effects besides their def.
    ///
    /// Pure instructions whose result is unused may be deleted by dead-code
    /// elimination. Division counts as pure because `eval` defines division by
    /// zero (no traps anywhere in the IR).
    #[inline]
    pub fn is_pure(&self) -> bool {
        matches!(
            self,
            Inst::Bin { .. }
                | Inst::Cmp { .. }
                | Inst::Copy { .. }
                | Inst::Load { .. }
                | Inst::FrameLoad { .. }
        )
    }

    /// Returns `true` if the instruction touches memory.
    #[inline]
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. }
                | Inst::Store { .. }
                | Inst::FrameLoad { .. }
                | Inst::FrameStore { .. }
        )
    }

    /// Returns `true` if the instruction is a call.
    #[inline]
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call { .. })
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Bin { op, dst, a, b } => write!(f, "{dst} = {op} {a}, {b}"),
            Inst::Cmp { pred, dst, a, b } => write!(f, "{dst} = cmp.{pred} {a}, {b}"),
            Inst::Copy { dst, src } => write!(f, "{dst} = {src}"),
            Inst::Load { dst, addr, offset } => write!(f, "{dst} = load [{addr}+{offset}]"),
            Inst::Store { src, addr, offset } => write!(f, "store [{addr}+{offset}], {src}"),
            Inst::Call { func, args, dst } => {
                if let Some(d) = dst {
                    write!(f, "{d} = call {func}(")?;
                } else {
                    write!(f, "call {func}(")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Inst::Br { target } => write!(f, "br {target}"),
            Inst::CondBr { cond, then_, else_ } => {
                write!(f, "br {cond} ? {then_} : {else_}")
            }
            Inst::Ret { val } => match val {
                Some(v) => write!(f, "ret {v}"),
                None => write!(f, "ret"),
            },
            Inst::FrameLoad { dst, slot } => write!(f, "{dst} = frame[{slot}]"),
            Inst::FrameStore { src, slot } => write!(f, "frame[{slot}] = {src}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Inst> {
        vec![
            Inst::Bin {
                op: BinOp::Add,
                dst: VReg(2),
                a: Operand::Reg(VReg(0)),
                b: Operand::Reg(VReg(1)),
            },
            Inst::Cmp {
                pred: Pred::Lt,
                dst: VReg(3),
                a: Operand::Reg(VReg(2)),
                b: Operand::Imm(10),
            },
            Inst::Copy {
                dst: VReg(4),
                src: Operand::Imm(5),
            },
            Inst::Load {
                dst: VReg(5),
                addr: VReg(4),
                offset: 8,
            },
            Inst::Store {
                src: Operand::Reg(VReg(5)),
                addr: VReg(4),
                offset: 12,
            },
            Inst::Call {
                func: FuncId(1),
                args: vec![Operand::Reg(VReg(5)), Operand::Imm(1)],
                dst: Some(VReg(6)),
            },
            Inst::CondBr {
                cond: VReg(3),
                then_: BlockId(1),
                else_: BlockId(2),
            },
            Inst::Br { target: BlockId(3) },
            Inst::Ret {
                val: Some(Operand::Reg(VReg(6))),
            },
        ]
    }

    #[test]
    fn defs_and_uses() {
        let insts = sample();
        assert_eq!(insts[0].def(), Some(VReg(2)));
        assert_eq!(insts[0].uses(), vec![VReg(0), VReg(1)]);
        assert_eq!(insts[3].def(), Some(VReg(5)));
        assert_eq!(insts[3].uses(), vec![VReg(4)]);
        assert_eq!(insts[4].def(), None);
        assert_eq!(insts[4].uses(), vec![VReg(5), VReg(4)]);
        assert_eq!(insts[5].def(), Some(VReg(6)));
        assert_eq!(insts[6].def(), None);
        assert_eq!(insts[6].uses(), vec![VReg(3)]);
        assert_eq!(insts[8].uses(), vec![VReg(6)]);
    }

    #[test]
    fn terminator_classification() {
        let insts = sample();
        let term: Vec<bool> = insts.iter().map(Inst::is_terminator).collect();
        assert_eq!(
            term,
            vec![false, false, false, false, false, false, true, true, true]
        );
    }

    #[test]
    fn map_uses_renames_only_uses() {
        let mut i = sample()[0].clone();
        i.map_uses(|r| VReg(r.0 + 10));
        assert_eq!(i.uses(), vec![VReg(10), VReg(11)]);
        assert_eq!(i.def(), Some(VReg(2)));
    }

    #[test]
    fn map_def_renames_only_def() {
        let mut i = sample()[0].clone();
        i.map_def(|r| VReg(r.0 + 10));
        assert_eq!(i.def(), Some(VReg(12)));
        assert_eq!(i.uses(), vec![VReg(0), VReg(1)]);
    }

    #[test]
    fn map_targets_rewrites_branches() {
        let mut br = Inst::Br { target: BlockId(3) };
        br.map_targets(|b| BlockId(b.0 + 1));
        assert_eq!(br, Inst::Br { target: BlockId(4) });

        let mut cbr = Inst::CondBr {
            cond: VReg(0),
            then_: BlockId(1),
            else_: BlockId(2),
        };
        cbr.map_targets(|b| BlockId(b.0 * 2));
        match cbr {
            Inst::CondBr { then_, else_, .. } => {
                assert_eq!(then_, BlockId(2));
                assert_eq!(else_, BlockId(4));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn purity() {
        let insts = sample();
        assert!(insts[0].is_pure());
        assert!(insts[3].is_pure()); // loads are pure (no IO in the IR)
        assert!(!insts[4].is_pure()); // stores have side effects
        assert!(!insts[5].is_pure()); // calls may have side effects
        assert!(!insts[6].is_pure());
    }

    #[test]
    fn display_round_trip_smoke() {
        for i in sample() {
            let s = i.to_string();
            assert!(!s.is_empty());
        }
        assert_eq!(sample()[0].to_string(), "v2 = add v0, v1".to_string());
        assert_eq!(sample()[4].to_string(), "store [v4+12], v5");
    }
}
