//! Backward liveness dataflow analysis.

use crate::cfg::Cfg;
use crate::function::Function;
use crate::types::BlockId;

/// Per-block live-in/live-out register sets, stored as bitsets.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// `live_in[b]` = registers live on entry to block `b`.
    pub live_in: Vec<BitSet>,
    /// `live_out[b]` = registers live on exit from block `b`.
    pub live_out: Vec<BitSet>,
}

/// A fixed-capacity bitset over virtual-register indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set with capacity for `n` elements.
    pub fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts `i`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        let w = &mut self.words[i / 64];
        let m = 1u64 << (i % 64);
        let new = *w & m == 0;
        *w |= m;
        new
    }

    /// Removes `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        if i / 64 < self.words.len() {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// `self |= other`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` when no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1u64 << b) != 0 {
                    Some(wi * 64 + b)
                } else {
                    None
                }
            })
        })
    }
}

impl Liveness {
    /// Computes liveness for `f`.
    pub fn compute(f: &Function) -> Self {
        let cfg = Cfg::compute(f);
        Self::compute_with_cfg(f, &cfg)
    }

    /// [`Liveness::compute`] with a precomputed CFG.
    pub fn compute_with_cfg(f: &Function, cfg: &Cfg) -> Self {
        let n = f.blocks.len();
        let nv = f.vreg_count as usize;
        // Per-block gen (upward-exposed uses) and kill (defs).
        let mut gen = vec![BitSet::new(nv); n];
        let mut kill = vec![BitSet::new(nv); n];
        for (bi, block) in f.iter_blocks() {
            let g = &mut gen[bi.index()];
            let k = &mut kill[bi.index()];
            for inst in &block.insts {
                inst.for_each_use(|r| {
                    if !k.contains(r.index()) {
                        g.insert(r.index());
                    }
                });
                if let Some(d) = inst.def() {
                    k.insert(d.index());
                }
            }
        }

        let mut live_in = vec![BitSet::new(nv); n];
        let mut live_out = vec![BitSet::new(nv); n];
        // Iterate to fixpoint, reverse block order as a decent schedule.
        let mut changed = true;
        while changed {
            changed = false;
            for bi in (0..n).rev() {
                let mut out = BitSet::new(nv);
                for s in &cfg.succs[bi] {
                    out.union_with(&live_in[s.index()]);
                }
                // in = gen ∪ (out − kill)
                let mut inp = gen[bi].clone();
                for w in 0..out.words.len() {
                    inp.words[w] |= out.words[w] & !kill[bi].words[w];
                }
                if inp != live_in[bi] {
                    live_in[bi] = inp;
                    changed = true;
                }
                live_out[bi] = out;
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live out of block `b`.
    pub fn out(&self, b: BlockId) -> &BitSet {
        &self.live_out[b.index()]
    }

    /// Registers live into block `b`.
    pub fn inp(&self, b: BlockId) -> &BitSet {
        &self.live_in[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::types::VReg;

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
        s.remove(0);
        assert!(!s.contains(0));
        assert!(!s.is_empty());
    }

    #[test]
    fn loop_carried_register_is_live_around_loop() {
        let mut b = FuncBuilder::new("l", 1);
        let n = b.param(0);
        let acc = b.iconst(0);
        b.counted_loop(0, n, 1, |b, i| {
            let t = b.add(acc, i);
            b.assign(acc, t);
        });
        b.ret(acc);
        let f = b.finish();
        let lv = Liveness::compute(&f);
        // acc is live out of the loop body (block 2) and into the header.
        assert!(lv.out(crate::BlockId(2)).contains(acc.index()));
        assert!(lv.inp(crate::BlockId(1)).contains(acc.index()));
        // acc is live into the exit block (it is returned).
        assert!(lv.inp(crate::BlockId(3)).contains(acc.index()));
    }

    #[test]
    fn dead_value_not_live() {
        let mut b = FuncBuilder::new("d", 1);
        let x = b.param(0);
        let dead = b.add(x, 1); // never used
        let live = b.add(x, 2);
        let _ = dead;
        b.ret(live);
        let f = b.finish();
        let lv = Liveness::compute(&f);
        assert!(!lv.out(crate::BlockId(0)).contains(dead.index()));
    }

    #[test]
    fn param_live_through_branch() {
        let mut b = FuncBuilder::new("p", 2);
        let x = b.param(0);
        let y = b.param(1);
        let c = b.cmp(crate::Pred::Gt, x, 0);
        let out = b.fresh();
        b.if_else(c, |b| b.assign(out, y), |b| b.assign(out, 0));
        b.ret(out);
        let f = b.finish();
        let lv = Liveness::compute(&f);
        // y is live into the then-arm (block 1) but not the else-arm.
        assert!(lv.inp(crate::BlockId(1)).contains(VReg(1).index()));
        assert!(!lv.inp(crate::BlockId(2)).contains(VReg(1).index()));
    }
}
