//! Functions, basic blocks, globals and modules.

use crate::inst::Inst;
use crate::types::{BlockId, FuncId, VReg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A basic block: a straight-line instruction sequence ending in a terminator.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Block {
    /// The instructions, terminator last.
    pub insts: Vec<Inst>,
}

impl Block {
    /// Creates an empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the terminator, if the block is non-empty and well-formed.
    pub fn terminator(&self) -> Option<&Inst> {
        self.insts.last().filter(|i| i.is_terminator())
    }

    /// Returns the successor blocks named by the terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self.terminator() {
            Some(Inst::Br { target }) => vec![*target],
            Some(Inst::CondBr { then_, else_, .. }) => vec![*then_, *else_],
            _ => vec![],
        }
    }

    /// Number of instructions, including the terminator.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` when the block holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The non-terminator instructions (the block "body").
    pub fn body(&self) -> &[Inst] {
        match self.insts.last() {
            Some(i) if i.is_terminator() => &self.insts[..self.insts.len() - 1],
            _ => &self.insts,
        }
    }
}

/// A function: parameters, virtual-register count and basic blocks.
///
/// Block 0 is always the entry block.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Function {
    /// Function name (unique within a module; used in diagnostics).
    pub name: String,
    /// Parameter registers, defined on entry.
    pub params: Vec<VReg>,
    /// Basic blocks; index = [`BlockId`].
    pub blocks: Vec<Block>,
    /// Number of virtual registers in use (all `VReg` indices are `< vreg_count`).
    pub vreg_count: u32,
    /// Source-level hint: functions marked cold are never inlined.
    pub cold: bool,
    /// Stack-frame size in 4-byte slots (set by the register allocator).
    pub frame_slots: u32,
}

impl Function {
    /// Creates a function with an (empty) entry block.
    pub fn new(name: impl Into<String>, nparams: usize) -> Self {
        Function {
            name: name.into(),
            params: (0..nparams as u32).map(VReg).collect(),
            blocks: vec![Block::new()],
            vreg_count: nparams as u32,
            cold: false,
            frame_slots: 0,
        }
    }

    /// The entry block id (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        let r = VReg(self.vreg_count);
        self.vreg_count += 1;
        r
    }

    /// Appends a new empty block and returns its id.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::new());
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Shared access to a block.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Exclusive access to a block.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterates over `(BlockId, &Block)` pairs in index order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Total static instruction count.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        writeln!(f, ") {{")?;
        for (id, b) in self.iter_blocks() {
            writeln!(f, "{id}:")?;
            for inst in &b.insts {
                writeln!(f, "  {inst}")?;
            }
        }
        write!(f, "}}")
    }
}

/// A global data object (an array of 4-byte words).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Global {
    /// Name, unique within the module.
    pub name: String,
    /// Size in 4-byte words.
    pub words: u32,
    /// Optional static initialiser (`init.len() <= words`); the rest is zero.
    pub init: Vec<i64>,
}

/// Where a module's globals are laid out in the flat byte address space.
///
/// Data starts at [`Module::DATA_BASE`]; each global is placed at the next
/// 64-byte boundary so that block-size sweeps in the cache model behave
/// sensibly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GlobalAddr {
    /// First byte of the global.
    pub base: u32,
    /// Size in bytes.
    pub bytes: u32,
}

/// A whole program: functions plus global data.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Module {
    /// Program name (diagnostics and experiment labels).
    pub name: String,
    /// Functions; index = [`FuncId`]. `main` is the entry function.
    pub funcs: Vec<Function>,
    /// Entry function.
    pub entry: FuncId,
    /// Global data objects.
    pub globals: Vec<Global>,
}

impl Module {
    /// Base byte address of global data.
    pub const DATA_BASE: u32 = 0x1_0000;
    /// Base byte address of the (downward-growing) stack.
    pub const STACK_BASE: u32 = 0x80_0000;

    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            funcs: Vec::new(),
            entry: FuncId(0),
            globals: Vec::new(),
        }
    }

    /// Adds a function, returning its id.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        self.funcs.push(f);
        FuncId(self.funcs.len() as u32 - 1)
    }

    /// Shared access to a function.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Exclusive access to a function.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Adds a zero-initialised global of `words` 4-byte words; returns its index.
    pub fn add_global(&mut self, name: impl Into<String>, words: u32) -> usize {
        self.globals.push(Global {
            name: name.into(),
            words,
            init: Vec::new(),
        });
        self.globals.len() - 1
    }

    /// Computes the address of every global under the fixed layout rule.
    pub fn global_addrs(&self) -> Vec<GlobalAddr> {
        let mut out = Vec::with_capacity(self.globals.len());
        let mut base = Self::DATA_BASE;
        for g in &self.globals {
            let bytes = g.words * 4;
            out.push(GlobalAddr { base, bytes });
            base = (base + bytes + 63) & !63;
        }
        out
    }

    /// Byte address of global `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn global_base(&self, index: usize) -> u32 {
        self.global_addrs()[index].base
    }

    /// Total static instruction count over all functions.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(Function::inst_count).sum()
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "module {} (entry {})", self.name, self.entry)?;
        for g in &self.globals {
            writeln!(f, "global {}[{} words]", g.name, g.words)?;
        }
        for func in &self.funcs {
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BinOp, Operand};

    #[test]
    fn block_successors() {
        let mut b = Block::new();
        assert!(b.successors().is_empty());
        b.insts.push(Inst::CondBr {
            cond: VReg(0),
            then_: BlockId(1),
            else_: BlockId(2),
        });
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(b.body().len(), 0);
    }

    #[test]
    fn function_vreg_and_block_allocation() {
        let mut f = Function::new("test", 2);
        assert_eq!(f.params, vec![VReg(0), VReg(1)]);
        let r = f.new_vreg();
        assert_eq!(r, VReg(2));
        let b = f.new_block();
        assert_eq!(b, BlockId(1));
        assert_eq!(f.blocks.len(), 2);
        assert_eq!(f.entry(), BlockId(0));
    }

    #[test]
    fn module_global_layout_is_64_byte_aligned() {
        let mut m = Module::new("t");
        m.add_global("a", 3); // 12 bytes -> next aligns to 64
        m.add_global("b", 20); // 80 bytes -> next aligns to 64*3
        m.add_global("c", 1);
        let addrs = m.global_addrs();
        assert_eq!(addrs[0].base, Module::DATA_BASE);
        assert_eq!(addrs[1].base, Module::DATA_BASE + 64);
        assert_eq!(addrs[2].base, Module::DATA_BASE + 64 + 128);
        for a in &addrs {
            assert_eq!(a.base % 64, 0);
        }
    }

    #[test]
    fn inst_count_sums_blocks() {
        let mut f = Function::new("g", 0);
        f.block_mut(BlockId(0)).insts.push(Inst::Bin {
            op: BinOp::Add,
            dst: VReg(0),
            a: Operand::Imm(1),
            b: Operand::Imm(2),
        });
        f.block_mut(BlockId(0)).insts.push(Inst::Ret { val: None });
        let mut m = Module::new("t");
        m.add_func(f);
        assert_eq!(m.inst_count(), 2);
    }

    #[test]
    fn display_smoke() {
        let mut f = Function::new("g", 1);
        f.block_mut(BlockId(0)).insts.push(Inst::Ret {
            val: Some(Operand::Reg(VReg(0))),
        });
        let mut m = Module::new("t");
        m.add_func(f);
        let s = m.to_string();
        assert!(s.contains("fn g(v0)"));
        assert!(s.contains("ret v0"));
    }
}
