//! A process- and platform-stable hasher for structural fingerprints.
//!
//! Fingerprints of compiled images key the **on-disk** profile cache
//! (`portopt_exec::cache`), so the hash must be identical across process
//! invocations, builds and machines — none of which
//! [`std::collections::hash_map::DefaultHasher`] guarantees (its algorithm
//! is explicitly unspecified and its per-process seeding is a library
//! detail). [`StableHasher`] is 64-bit FNV-1a with every multi-byte write
//! canonicalised to little-endian, so `value.hash(&mut StableHasher::new())`
//! yields the same `u64` everywhere for the same structural value.
//!
//! The intended pattern is `#[derive(Hash)]` on the data being
//! fingerprinted: the compiler then enumerates every field, adding a field
//! automatically extends the fingerprint, and a field whose type cannot be
//! hashed is a *compile error* rather than a silently narrower cache key.
//!
//! ```
//! use portopt_ir::StableHasher;
//! use std::hash::{Hash, Hasher};
//!
//! #[derive(Hash)]
//! struct Key {
//!     name: &'static str,
//!     sizes: Vec<u32>,
//! }
//!
//! let fp = |k: &Key| {
//!     let mut h = StableHasher::new();
//!     k.hash(&mut h);
//!     h.finish()
//! };
//! let a = Key { name: "x", sizes: vec![1, 2] };
//! let b = Key { name: "x", sizes: vec![1, 2] };
//! let c = Key { name: "x", sizes: vec![1, 3] };
//! assert_eq!(fp(&a), fp(&b));
//! assert_ne!(fp(&a), fp(&c));
//! ```

use std::hash::Hasher;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a with canonical little-endian integer writes.
///
/// See the [module docs](self) for why sweeps use this instead of the
/// standard library's default hasher.
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl StableHasher {
    /// A fresh hasher (fixed seed — stability is the whole point).
    pub fn new() -> Self {
        StableHasher(FNV_OFFSET)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    // Fix the byte order of every integer write: the default methods
    // forward native-endian bytes, which would make fingerprints differ
    // between little- and big-endian hosts sharing a profile cache.
    fn write_u8(&mut self, n: u8) {
        self.write(&[n]);
    }
    fn write_u16(&mut self, n: u16) {
        self.write(&n.to_le_bytes());
    }
    fn write_u32(&mut self, n: u32) {
        self.write(&n.to_le_bytes());
    }
    fn write_u64(&mut self, n: u64) {
        self.write(&n.to_le_bytes());
    }
    fn write_u128(&mut self, n: u128) {
        self.write(&n.to_le_bytes());
    }
    fn write_usize(&mut self, n: usize) {
        // Canonical width too, so 32- and 64-bit hosts agree.
        self.write_u64(n as u64);
    }
    fn write_i8(&mut self, n: i8) {
        self.write_u8(n as u8);
    }
    fn write_i16(&mut self, n: i16) {
        self.write_u16(n as u16);
    }
    fn write_i32(&mut self, n: i32) {
        self.write_u32(n as u32);
    }
    fn write_i64(&mut self, n: i64) {
        self.write_u64(n as u64);
    }
    fn write_i128(&mut self, n: i128) {
        self.write_u128(n as u128);
    }
    fn write_isize(&mut self, n: isize) {
        self.write_u64(n as i64 as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn fp<T: Hash>(v: &T) -> u64 {
        let mut h = StableHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn known_answer_is_pinned() {
        // FNV-1a of b"a" — a change to the algorithm (or to the canonical
        // byte order) would silently orphan every on-disk cache entry, so
        // pin the constant.
        let mut h = StableHasher::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn integer_writes_match_their_le_bytes() {
        let mut a = StableHasher::new();
        a.write_u32(0x0403_0201);
        let mut b = StableHasher::new();
        b.write(&[1, 2, 3, 4]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn usize_hashes_like_u64() {
        let mut a = StableHasher::new();
        a.write_usize(77);
        let mut b = StableHasher::new();
        b.write_u64(77);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn structural_difference_changes_the_hash() {
        assert_eq!(fp(&(1u32, "x")), fp(&(1u32, "x")));
        assert_ne!(fp(&(1u32, "x")), fp(&(2u32, "x")));
        assert_ne!(fp(&vec![1u8, 2]), fp(&vec![2u8, 1]));
        // Length is part of the hash: ["ab"] vs ["a","b"] must differ.
        assert_ne!(fp(&vec!["ab"]), fp(&vec!["a", "b"]));
    }
}
