//! A reference interpreter for differential testing of compiler passes.
//!
//! This interpreter cares only about *semantics* — it models no caches, no
//! pipeline and collects no profiles (that is `portopt-sim`'s job). Passes
//! are validated by running a module before and after transformation and
//! comparing [`ExecResult`]s.

use crate::function::Module;
use crate::inst::Inst;
use crate::types::{FuncId, Operand};
use std::fmt;

/// Why execution stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The dynamic instruction budget was exhausted (runaway loop).
    FuelExhausted,
    /// Call depth exceeded the interpreter's stack limit.
    StackOverflow,
    /// A memory access fell outside the modelled address space.
    BadAddress {
        /// The offending byte address.
        addr: i64,
    },
    /// A block ended without a terminator (malformed IR).
    FellThrough,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::FuelExhausted => write!(f, "instruction budget exhausted"),
            ExecError::StackOverflow => write!(f, "call stack overflow"),
            ExecError::BadAddress { addr } => write!(f, "bad memory address {addr:#x}"),
            ExecError::FellThrough => write!(f, "block without terminator"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The observable outcome of a program run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecResult {
    /// Value returned by the entry function (0 if it returned nothing).
    pub ret: i64,
    /// FNV-1a hash over the final contents of every global.
    pub mem_hash: u64,
    /// Dynamic instruction count.
    pub dyn_insts: u64,
}

/// Interpreter configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecLimits {
    /// Maximum dynamic instructions before [`ExecError::FuelExhausted`].
    pub fuel: u64,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            fuel: 200_000_000,
            max_depth: 10_000,
        }
    }
}

/// Flat program memory: globals at [`Module::DATA_BASE`], stack growing down
/// from [`Module::STACK_BASE`].
#[derive(Debug, Clone)]
pub struct Memory {
    words: Vec<i64>,
}

impl Memory {
    /// Allocates memory and copies in every global's initialiser.
    pub fn for_module(m: &Module) -> Self {
        let mut words = vec![0i64; (Module::STACK_BASE / 4) as usize];
        let addrs = m.global_addrs();
        for (g, a) in m.globals.iter().zip(&addrs) {
            let base = (a.base / 4) as usize;
            words[base..base + g.init.len()].copy_from_slice(&g.init);
        }
        Memory { words }
    }

    /// Reads the word at byte address `addr`.
    ///
    /// Out-of-range loads return 0: loads are non-trapping in this IR
    /// (division is total too), which is what licenses the compiler's
    /// speculative load motion (`-fsched-spec`). Stores remain checked.
    #[inline]
    pub fn load(&self, addr: i64) -> Result<i64, ExecError> {
        let idx = addr >> 2;
        if addr < 0 || idx as usize >= self.words.len() {
            return Ok(0);
        }
        Ok(self.words[idx as usize])
    }

    /// Writes the word at byte address `addr`.
    #[inline]
    pub fn store(&mut self, addr: i64, val: i64) -> Result<(), ExecError> {
        let idx = addr >> 2;
        if addr < 0 || idx as usize >= self.words.len() {
            return Err(ExecError::BadAddress { addr });
        }
        self.words[idx as usize] = val;
        Ok(())
    }

    /// FNV-1a hash of the words covered by the module's globals.
    pub fn hash_globals(&self, m: &Module) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for a in m.global_addrs() {
            let base = (a.base / 4) as usize;
            for w in &self.words[base..base + (a.bytes / 4) as usize] {
                for b in w.to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1_0000_01b3);
                }
            }
        }
        h
    }

    /// Direct word access for test setup (index = byte address / 4).
    pub fn word_mut(&mut self, byte_addr: u32) -> &mut i64 {
        &mut self.words[(byte_addr / 4) as usize]
    }
}

/// Runs `m`'s entry function with `args`, on fresh memory, under default
/// limits.
///
/// # Errors
/// Propagates any [`ExecError`] raised during execution.
pub fn run_module(m: &Module, args: &[i64]) -> Result<ExecResult, ExecError> {
    run_module_with(m, args, ExecLimits::default())
}

/// [`run_module`] with explicit limits.
///
/// # Errors
/// Propagates any [`ExecError`] raised during execution.
pub fn run_module_with(
    m: &Module,
    args: &[i64],
    limits: ExecLimits,
) -> Result<ExecResult, ExecError> {
    let mut mem = Memory::for_module(m);
    let mut fuel = limits.fuel;
    let ret = call(
        m,
        m.entry,
        args,
        &mut mem,
        Module::STACK_BASE as i64,
        0,
        limits.max_depth,
        &mut fuel,
    )?;
    Ok(ExecResult {
        ret: ret.unwrap_or(0),
        mem_hash: mem.hash_globals(m),
        dyn_insts: limits.fuel - fuel,
    })
}

#[allow(clippy::too_many_arguments)]
fn call(
    m: &Module,
    fid: FuncId,
    args: &[i64],
    mem: &mut Memory,
    sp: i64,
    depth: usize,
    max_depth: usize,
    fuel: &mut u64,
) -> Result<Option<i64>, ExecError> {
    if depth >= max_depth {
        return Err(ExecError::StackOverflow);
    }
    let f = m.func(fid);
    let frame_bytes = (f.frame_slots as i64) * 4;
    let fp = sp - frame_bytes;
    if fp < Module::DATA_BASE as i64 {
        return Err(ExecError::StackOverflow);
    }
    let mut regs = vec![0i64; f.vreg_count as usize];
    for (p, v) in f.params.iter().zip(args) {
        regs[p.index()] = *v;
    }

    let mut bi = f.entry();
    loop {
        let block = f.block(bi);
        let mut next = None;
        for inst in &block.insts {
            if *fuel == 0 {
                return Err(ExecError::FuelExhausted);
            }
            *fuel -= 1;
            let val = |o: &Operand, regs: &[i64]| -> i64 {
                match o {
                    Operand::Reg(r) => regs[r.index()],
                    Operand::Imm(v) => *v,
                }
            };
            match inst {
                Inst::Bin { op, dst, a, b } => {
                    regs[dst.index()] = op.eval(val(a, &regs), val(b, &regs));
                }
                Inst::Cmp { pred, dst, a, b } => {
                    regs[dst.index()] = pred.eval(val(a, &regs), val(b, &regs));
                }
                Inst::Copy { dst, src } => {
                    regs[dst.index()] = val(src, &regs);
                }
                Inst::Load { dst, addr, offset } => {
                    regs[dst.index()] = mem.load(regs[addr.index()].wrapping_add(*offset))?;
                }
                Inst::Store { src, addr, offset } => {
                    let v = val(src, &regs);
                    mem.store(regs[addr.index()].wrapping_add(*offset), v)?;
                }
                Inst::FrameLoad { dst, slot } => {
                    regs[dst.index()] = mem.load(fp + (*slot as i64) * 4)?;
                }
                Inst::FrameStore { src, slot } => {
                    let v = val(src, &regs);
                    mem.store(fp + (*slot as i64) * 4, v)?;
                }
                Inst::Call {
                    func,
                    args: cargs,
                    dst,
                } => {
                    let argv: Vec<i64> = cargs.iter().map(|a| val(a, &regs)).collect();
                    let r = call(m, *func, &argv, mem, fp, depth + 1, max_depth, fuel)?;
                    if let Some(d) = dst {
                        regs[d.index()] = r.unwrap_or(0);
                    }
                }
                Inst::Br { target } => {
                    next = Some(*target);
                    break;
                }
                Inst::CondBr { cond, then_, else_ } => {
                    next = Some(if regs[cond.index()] != 0 {
                        *then_
                    } else {
                        *else_
                    });
                    break;
                }
                Inst::Ret { val: v } => {
                    return Ok(v.as_ref().map(|o| val(o, &regs)));
                }
            }
        }
        match next {
            Some(b) => bi = b,
            None => return Err(ExecError::FellThrough),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FuncBuilder, ModuleBuilder};
    use crate::types::Pred;

    fn sum_module(n: i64) -> Module {
        let mut mb = ModuleBuilder::new("sum");
        let mut b = FuncBuilder::new("main", 0);
        let acc = b.iconst(0);
        b.counted_loop(0, n, 1, |b, i| {
            let t = b.add(acc, i);
            b.assign(acc, t);
        });
        b.ret(acc);
        let id = mb.add(b.finish());
        mb.entry(id);
        mb.finish()
    }

    #[test]
    fn sums_correctly() {
        let r = run_module(&sum_module(10), &[]).unwrap();
        assert_eq!(r.ret, 45);
        assert!(r.dyn_insts > 30);
    }

    #[test]
    fn empty_range_runs_zero_iterations() {
        let r = run_module(&sum_module(0), &[]).unwrap();
        assert_eq!(r.ret, 0);
    }

    #[test]
    fn memory_and_hash() {
        let mut mb = ModuleBuilder::new("mem");
        let (_, base) = mb.global("buf", 8);
        let mut b = FuncBuilder::new("main", 0);
        let p = b.iconst(base as i64);
        b.counted_loop(0, 8, 1, |b, i| {
            let off = b.shl(i, 2);
            let addr = b.add(p, off);
            let v = b.mul(i, i);
            b.store(v, addr, 0);
        });
        let x = b.load(p, 28); // buf[7] == 49
        b.ret(x);
        let id = mb.add(b.finish());
        mb.entry(id);
        let m = mb.finish();
        let r1 = run_module(&m, &[]).unwrap();
        assert_eq!(r1.ret, 49);
        let r2 = run_module(&m, &[]).unwrap();
        assert_eq!(r1.mem_hash, r2.mem_hash, "determinism");
    }

    #[test]
    fn recursion_with_frames() {
        let mut mb = ModuleBuilder::new("fib");
        let fid = mb.declare("fib", 1);
        let mut b = FuncBuilder::new("fib", 1);
        let n = b.param(0);
        let c = b.cmp(Pred::Lt, n, 2);
        let out = b.fresh();
        b.if_else(
            c,
            |b| b.assign(out, n),
            |b| {
                let n1 = b.sub(n, 1);
                let a = b.call(fid, &[n1.into()]);
                let n2 = b.sub(n, 2);
                let c2 = b.call(fid, &[n2.into()]);
                let s = b.add(a, c2);
                b.assign(out, s);
            },
        );
        b.ret(out);
        mb.define(fid, b.finish());
        mb.entry(fid);
        let m = mb.finish();
        assert_eq!(run_module(&m, &[10]).unwrap().ret, 55);
    }

    #[test]
    fn frame_slots_store_and_reload() {
        let mut mb = ModuleBuilder::new("frame");
        let mut f = FuncBuilder::new("main", 0);
        let x = f.iconst(7);
        f.push(Inst::FrameStore {
            src: Operand::Reg(x),
            slot: 2,
        });
        let y = f.fresh();
        f.push(Inst::FrameLoad { dst: y, slot: 2 });
        f.ret(y);
        let mut func = f.finish();
        func.frame_slots = 4;
        let id = mb.add(func);
        mb.entry(id);
        let m = mb.finish();
        assert_eq!(run_module(&m, &[]).unwrap().ret, 7);
    }

    #[test]
    fn fuel_limit_stops_infinite_loop() {
        let mut mb = ModuleBuilder::new("inf");
        let mut b = FuncBuilder::new("main", 0);
        let l = b.block();
        b.br(l);
        b.switch_to(l);
        b.br(l);
        let id = mb.add(b.finish());
        mb.entry(id);
        let m = mb.finish();
        let e = run_module_with(
            &m,
            &[],
            ExecLimits {
                fuel: 1000,
                max_depth: 10,
            },
        )
        .unwrap_err();
        assert_eq!(e, ExecError::FuelExhausted);
    }

    #[test]
    fn stack_overflow_detected() {
        let mut mb = ModuleBuilder::new("rec");
        let fid = mb.declare("r", 1);
        let mut b = FuncBuilder::new("r", 1);
        let n = b.param(0);
        let r = b.call(fid, &[n.into()]);
        b.ret(r);
        mb.define(fid, b.finish());
        mb.entry(fid);
        let m = mb.finish();
        let e = run_module_with(
            &m,
            &[1],
            ExecLimits {
                fuel: 1_000_000,
                max_depth: 64,
            },
        )
        .unwrap_err();
        assert_eq!(e, ExecError::StackOverflow);
    }

    #[test]
    fn wild_load_reads_zero_wild_store_faults() {
        // Loads are non-trapping (they return 0 out of range) so that
        // speculative load motion is semantics-preserving; stores fault.
        let mut mb = ModuleBuilder::new("bad");
        let mut b = FuncBuilder::new("main", 0);
        let p = b.iconst(-8);
        let v = b.load(p, 0);
        b.ret(v);
        let id = mb.add(b.finish());
        mb.entry(id);
        let m = mb.finish();
        assert_eq!(run_module(&m, &[]).unwrap().ret, 0);

        let mut mb = ModuleBuilder::new("bad2");
        let mut b = FuncBuilder::new("main", 0);
        let p = b.iconst(-8);
        b.store(1, p, 0);
        b.ret_void();
        let id = mb.add(b.finish());
        mb.entry(id);
        let m = mb.finish();
        assert!(matches!(
            run_module(&m, &[]).unwrap_err(),
            ExecError::BadAddress { .. }
        ));
    }
}
