//! IR well-formedness verification.
//!
//! The verifier is run after every pass in debug builds and in tests, so a
//! broken transformation fails fast with a precise diagnostic instead of
//! producing garbage timing numbers three crates later.

use crate::cfg::reachable;
use crate::function::{Function, Module};
use crate::inst::Inst;
use crate::types::{BlockId, FuncId};
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the error was found.
    pub func: String,
    /// Offending block, when applicable.
    pub block: Option<BlockId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.block {
            Some(b) => write!(f, "verify: {} {}: {}", self.func, b, self.message),
            None => write!(f, "verify: {}: {}", self.func, self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

fn err(func: &str, block: Option<BlockId>, message: String) -> VerifyError {
    VerifyError {
        func: func.to_string(),
        block,
        message,
    }
}

/// Verifies a single function against `module` (for call signatures).
///
/// Checked properties:
/// * every block ends with exactly one terminator, and terminators appear
///   nowhere else;
/// * branch targets are in range;
/// * every used register index is `< vreg_count`;
/// * call targets exist and argument counts match the callee;
/// * the entry block exists.
///
/// # Errors
/// Returns the first violation found.
pub fn verify_function(f: &Function, module: &Module) -> Result<(), VerifyError> {
    if f.blocks.is_empty() {
        return Err(err(&f.name, None, "function has no blocks".into()));
    }
    let nblocks = f.blocks.len() as u32;
    for (bi, block) in f.iter_blocks() {
        if block.insts.is_empty() {
            return Err(err(&f.name, Some(bi), "empty block".into()));
        }
        for (k, inst) in block.insts.iter().enumerate() {
            let last = k + 1 == block.insts.len();
            if inst.is_terminator() != last {
                return Err(err(
                    &f.name,
                    Some(bi),
                    format!("instruction {k} ({inst}) terminator misplacement"),
                ));
            }
            // Register indices in range.
            let mut bad: Option<u32> = None;
            inst.for_each_use(|r| {
                if r.0 >= f.vreg_count {
                    bad = Some(r.0);
                }
            });
            if let Some(d) = inst.def() {
                if d.0 >= f.vreg_count {
                    bad = Some(d.0);
                }
            }
            if let Some(r) = bad {
                return Err(err(
                    &f.name,
                    Some(bi),
                    format!("register v{r} out of range (vreg_count {})", f.vreg_count),
                ));
            }
            match inst {
                Inst::Br { target } => {
                    if target.0 >= nblocks {
                        return Err(err(
                            &f.name,
                            Some(bi),
                            format!("branch to missing {target}"),
                        ));
                    }
                }
                Inst::CondBr { then_, else_, .. } => {
                    for t in [then_, else_] {
                        if t.0 >= nblocks {
                            return Err(err(&f.name, Some(bi), format!("branch to missing {t}")));
                        }
                    }
                }
                Inst::Call { func, args, .. } => {
                    let Some(callee) = module.funcs.get(func.index()) else {
                        return Err(err(&f.name, Some(bi), format!("call to missing {func}")));
                    };
                    if callee.params.len() != args.len() {
                        return Err(err(
                            &f.name,
                            Some(bi),
                            format!(
                                "call to {} with {} args, expected {}",
                                callee.name,
                                args.len(),
                                callee.params.len()
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    Ok(())
}

/// Verifies every function in `m`, plus module-level invariants
/// (valid entry id, unique function names).
///
/// # Errors
/// Returns the first violation found.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    if m.funcs.get(m.entry.index()).is_none() {
        return Err(err(&m.name, None, format!("missing entry {}", m.entry)));
    }
    let mut names: Vec<&str> = m.funcs.iter().map(|f| f.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    if names.len() != m.funcs.len() {
        return Err(err(&m.name, None, "duplicate function names".into()));
    }
    for f in &m.funcs {
        verify_function(f, m)?;
    }
    Ok(())
}

/// Statistics about a module, used in tests and experiment logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleStats {
    /// Total functions.
    pub funcs: usize,
    /// Total basic blocks.
    pub blocks: usize,
    /// Total instructions.
    pub insts: usize,
    /// Blocks unreachable from their function's entry.
    pub unreachable_blocks: usize,
}

/// Computes simple size statistics for `m`.
pub fn module_stats(m: &Module) -> ModuleStats {
    let mut blocks = 0;
    let mut insts = 0;
    let mut unreachable_blocks = 0;
    for f in &m.funcs {
        blocks += f.blocks.len();
        insts += f.inst_count();
        let r = reachable(f);
        unreachable_blocks += r.iter().filter(|&&x| !x).count();
    }
    ModuleStats {
        funcs: m.funcs.len(),
        blocks,
        insts,
        unreachable_blocks,
    }
}

/// Checks whether `f` references `target` in any call.
pub fn calls(f: &Function, target: FuncId) -> bool {
    f.blocks.iter().any(|b| {
        b.insts
            .iter()
            .any(|i| matches!(i, Inst::Call { func, .. } if *func == target))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FuncBuilder, ModuleBuilder};
    use crate::types::{Operand, VReg};

    fn ok_module() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let mut b = FuncBuilder::new("main", 0);
        let x = b.iconst(42);
        b.ret(x);
        let id = mb.add(b.finish());
        mb.entry(id);
        mb.finish()
    }

    #[test]
    fn accepts_valid_module() {
        verify_module(&ok_module()).unwrap();
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut m = ok_module();
        m.funcs[0].blocks[0].insts.pop(); // drop the ret
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn rejects_mid_block_terminator() {
        let mut m = ok_module();
        m.funcs[0].blocks[0]
            .insts
            .insert(0, Inst::Ret { val: None });
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_out_of_range_register() {
        let mut m = ok_module();
        m.funcs[0].blocks[0].insts[0] = Inst::Copy {
            dst: VReg(1000),
            src: Operand::Imm(0),
        };
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
    }

    #[test]
    fn rejects_branch_to_missing_block() {
        let mut m = ok_module();
        m.funcs[0].blocks[0].insts[1] = Inst::Br {
            target: BlockId(99),
        };
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut mb = ModuleBuilder::new("t");
        let callee = {
            let mut b = FuncBuilder::new("callee", 2);
            let s = b.add(b.param(0), b.param(1));
            b.ret(s);
            mb.add(b.finish())
        };
        let mut b = FuncBuilder::new("main", 0);
        let r = b.call(callee, &[Operand::Imm(1)]); // one arg, needs two
        b.ret(r);
        let id = mb.add(b.finish());
        mb.entry(id);
        let m = mb.finish();
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("expected 2"), "{e}");
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut m = ok_module();
        let f = m.funcs[0].clone();
        m.funcs.push(f);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn stats_counts() {
        let m = ok_module();
        let s = module_stats(&m);
        assert_eq!(s.funcs, 1);
        assert_eq!(s.blocks, 1);
        assert_eq!(s.insts, 2);
        assert_eq!(s.unreachable_blocks, 0);
    }
}
