//! # portopt-search
//!
//! Iterative-compilation search strategies over the Figure 3 optimisation
//! space. The paper's "Best" upper bound is [`random_search`] with 1000
//! uniform-random evaluations (§4.3); [`genetic_search`],
//! [`hill_climb`] and [`combined_elimination`] reproduce the related-work
//! baselines (refs.\[24\], \[2\] and Pan & Eigenmann \[30\] of the paper).
//!
//! All searches work against an opaque cost function (lower is better —
//! cycles, in the experiments) so they are reusable for any objective, and
//! record their full [`Trace`] so convergence plots (the paper's "≈50
//! iterations to match the model" claim, §5.3) fall out for free.

#![warn(missing_docs)]

use portopt_passes::{OptConfig, OptSpace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One evaluated point.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The evaluated configuration.
    pub config: OptConfig,
    /// Its cost (lower is better).
    pub cost: f64,
}

/// A full search trajectory.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Every evaluation, in order.
    pub samples: Vec<Sample>,
}

impl Trace {
    /// The best sample found.
    ///
    /// # Panics
    /// Panics if the trace is empty.
    pub fn best(&self) -> &Sample {
        self.samples
            .iter()
            .min_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"))
            .expect("empty trace")
    }

    /// Best cost after each evaluation (the convergence curve).
    pub fn convergence(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.samples
            .iter()
            .map(|s| {
                best = best.min(s.cost);
                best
            })
            .collect()
    }

    /// Number of evaluations needed to reach a cost of at most `target`,
    /// if ever.
    pub fn evals_to_reach(&self, target: f64) -> Option<usize> {
        self.convergence()
            .iter()
            .position(|&c| c <= target)
            .map(|i| i + 1)
    }
}

/// Uniform-random iterative search: the paper's 1000-evaluation "Best".
pub fn random_search(evals: usize, seed: u64, mut cost: impl FnMut(&OptConfig) -> f64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::default();
    for _ in 0..evals {
        let config = OptConfig::sample(&mut rng);
        let c = cost(&config);
        trace.samples.push(Sample { config, cost: c });
    }
    trace
}

/// Mutates one configuration: each dimension re-rolls with probability
/// `rate`.
fn mutate(cfg: &OptConfig, rate: f64, rng: &mut StdRng) -> OptConfig {
    let dims = OptSpace::dims();
    let mut choices = cfg.to_choices();
    for (c, d) in choices.iter_mut().zip(&dims) {
        if rng.gen_bool(rate) {
            *c = rng.gen_range(0..d.cardinality) as u8;
        }
    }
    OptConfig::from_choices(&choices)
}

/// Uniform crossover of two configurations.
fn crossover(a: &OptConfig, b: &OptConfig, rng: &mut StdRng) -> OptConfig {
    let (ca, cb) = (a.to_choices(), b.to_choices());
    let mixed: Vec<u8> = ca
        .iter()
        .zip(&cb)
        .map(|(&x, &y)| if rng.gen_bool(0.5) { x } else { y })
        .collect();
    OptConfig::from_choices(&mixed)
}

/// Genetic-algorithm search (Cooper/Kulkarni-style): tournament selection,
/// uniform crossover, per-gene mutation. `evals` bounds total cost-function
/// calls.
pub fn genetic_search(evals: usize, seed: u64, mut cost: impl FnMut(&OptConfig) -> f64) -> Trace {
    const POP: usize = 20;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::default();
    let eval = |cfg: OptConfig, trace: &mut Trace, cost: &mut dyn FnMut(&OptConfig) -> f64| {
        let c = cost(&cfg);
        trace.samples.push(Sample {
            config: cfg,
            cost: c,
        });
        c
    };

    let mut pop: Vec<(OptConfig, f64)> = Vec::with_capacity(POP);
    for _ in 0..POP.min(evals) {
        let cfg = OptConfig::sample(&mut rng);
        let c = eval(cfg, &mut trace, &mut cost);
        pop.push((cfg, c));
    }
    while trace.samples.len() < evals {
        // Tournament of 3.
        let pick = |rng: &mut StdRng, pop: &[(OptConfig, f64)]| -> OptConfig {
            let mut best: Option<(OptConfig, f64)> = None;
            for _ in 0..3 {
                let c = pop[rng.gen_range(0..pop.len())];
                if best.is_none() || c.1 < best.expect("set").1 {
                    best = Some(c);
                }
            }
            best.expect("non-empty tournament").0
        };
        let pa = pick(&mut rng, &pop);
        let pb = pick(&mut rng, &pop);
        let child = mutate(&crossover(&pa, &pb, &mut rng), 0.05, &mut rng);
        let c = eval(child, &mut trace, &mut cost);
        // Replace the worst member.
        let worst = pop
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty population");
        if c < pop[worst].1 {
            pop[worst] = (child, c);
        }
    }
    trace
}

/// Random-restart hill climbing (Almagor et al. style): first-improvement
/// over single-dimension moves.
pub fn hill_climb(evals: usize, seed: u64, mut cost: impl FnMut(&OptConfig) -> f64) -> Trace {
    let dims = OptSpace::dims();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = Trace::default();

    while trace.samples.len() < evals {
        // Restart.
        let mut cur = OptConfig::sample(&mut rng);
        let mut cur_cost = cost(&cur);
        trace.samples.push(Sample {
            config: cur,
            cost: cur_cost,
        });
        let mut improved = true;
        while improved && trace.samples.len() < evals {
            improved = false;
            // Visit dimensions in random order.
            let mut order: Vec<usize> = (0..dims.len()).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            'dims: for &d in &order {
                let cur_choices = cur.to_choices();
                for v in 0..dims[d].cardinality as u8 {
                    if v == cur_choices[d] {
                        continue;
                    }
                    let mut cand = cur_choices.clone();
                    cand[d] = v;
                    let cand_cfg = OptConfig::from_choices(&cand);
                    let c = cost(&cand_cfg);
                    trace.samples.push(Sample {
                        config: cand_cfg,
                        cost: c,
                    });
                    if c < cur_cost {
                        cur = cand_cfg;
                        cur_cost = c;
                        improved = true;
                        break 'dims;
                    }
                    if trace.samples.len() >= evals {
                        return trace;
                    }
                }
            }
        }
    }
    trace
}

/// Combined elimination (Pan & Eigenmann, CGO 2006): start from everything
/// on, repeatedly measure each flag's relative improvement when turned off,
/// and greedily disable the ones with negative effect.
pub fn combined_elimination(seed: u64, mut cost: impl FnMut(&OptConfig) -> f64) -> Trace {
    let _ = seed; // deterministic; kept for signature uniformity
    let dims = OptSpace::dims();
    let mut trace = Trace::default();
    let eval = |cfg: OptConfig, trace: &mut Trace, cost: &mut dyn FnMut(&OptConfig) -> f64| {
        let c = cost(&cfg);
        trace.samples.push(Sample {
            config: cfg,
            cost: c,
        });
        c
    };

    // Baseline: everything enabled at defaults (O3-ish point in the space).
    let mut base = OptConfig::o3();
    // Also enable the flags O3 leaves off so elimination has the full set.
    base.unroll_loops = true;
    let mut base_cost = eval(base, &mut trace, &mut cost);

    loop {
        // Measure RIP (relative improvement percentage) of flipping each
        // boolean dimension to 0.
        let base_choices = base.to_choices();
        let mut gains: Vec<(usize, f64)> = Vec::new();
        for (d, dim) in dims.iter().enumerate() {
            if dim.cardinality != 2 || base_choices[d] == 0 {
                continue;
            }
            let mut cand = base_choices.clone();
            cand[d] = 0;
            let c = eval(OptConfig::from_choices(&cand), &mut trace, &mut cost);
            if c < base_cost {
                gains.push((d, base_cost - c));
            }
        }
        if gains.is_empty() {
            return trace;
        }
        // Disable the single most harmful flag and iterate.
        gains.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        let (d, _) = gains[0];
        let mut next = base.to_choices();
        next[d] = 0;
        base = OptConfig::from_choices(&next);
        base_cost = eval(base, &mut trace, &mut cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic separable cost: each enabled flag from a "good set"
    /// subtracts, each from a "bad set" adds.
    fn synthetic_cost(cfg: &OptConfig) -> f64 {
        let c = cfg.to_choices();
        let mut cost = 1000.0;
        for (i, &v) in c.iter().enumerate() {
            let v = v as f64;
            if i % 3 == 0 {
                cost -= 5.0 * v; // helpful dimensions
            } else if i % 3 == 1 {
                cost += 3.0 * v; // harmful dimensions
            }
        }
        cost
    }

    #[test]
    fn random_search_improves_with_budget() {
        let t10 = random_search(10, 1, synthetic_cost);
        let t500 = random_search(500, 1, synthetic_cost);
        assert!(t500.best().cost <= t10.best().cost);
        assert_eq!(t500.samples.len(), 500);
    }

    #[test]
    fn convergence_is_monotone() {
        let t = random_search(200, 2, synthetic_cost);
        let conv = t.convergence();
        for w in conv.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert_eq!(*conv.last().unwrap(), t.best().cost);
    }

    #[test]
    fn evals_to_reach_finds_threshold() {
        let t = random_search(300, 3, synthetic_cost);
        let best = t.best().cost;
        let n = t.evals_to_reach(best).unwrap();
        assert!(n <= 300);
        assert!(t.evals_to_reach(best - 1.0).is_none());
    }

    #[test]
    fn genetic_beats_random_on_separable_cost() {
        let tr = random_search(300, 4, synthetic_cost);
        let tg = genetic_search(300, 4, synthetic_cost);
        // GA should do at least as well on this easy landscape.
        assert!(tg.best().cost <= tr.best().cost + 10.0);
        assert_eq!(tg.samples.len(), 300);
    }

    #[test]
    fn hill_climb_reaches_local_optimum_fast() {
        let t = hill_climb(600, 5, synthetic_cost);
        // The separable optimum: all helpful max, all harmful zero.
        let best = t.best();
        let c = best.config.to_choices();
        let dims = OptSpace::dims();
        let mut optimal = true;
        for (i, d) in dims.iter().enumerate() {
            if i % 3 == 0 && (c[i] as usize) != d.cardinality - 1 {
                optimal = false;
            }
            if i % 3 == 1 && c[i] != 0 {
                optimal = false;
            }
        }
        assert!(optimal, "hill climbing missed the separable optimum");
    }

    #[test]
    fn combined_elimination_disables_harmful_flags() {
        let t = combined_elimination(0, synthetic_cost);
        let best = t.best();
        let c = best.config.to_choices();
        let dims = OptSpace::dims();
        for (i, d) in dims.iter().enumerate() {
            if d.cardinality == 2 && i % 3 == 1 {
                assert_eq!(c[i], 0, "harmful flag {i} left on");
            }
        }
        // CE uses far fewer evaluations than exhaustive search.
        assert!(t.samples.len() < 2000);
    }

    #[test]
    fn searches_are_deterministic_per_seed() {
        let a = random_search(50, 9, synthetic_cost);
        let b = random_search(50, 9, synthetic_cost);
        assert_eq!(a.samples, b.samples);
        let g1 = genetic_search(100, 9, synthetic_cost);
        let g2 = genetic_search(100, 9, synthetic_cost);
        assert_eq!(g1.samples, g2.samples);
    }
}
