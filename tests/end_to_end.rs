//! Cross-crate integration tests: the whole stack from IR to model.

use portopt::prelude::*;
use portopt_core::{generate, GenOptions, PortableCompiler, SweepScale, TrainOptions};
use portopt_ir::interp::run_module;
use portopt_mibench::{suite, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every suite program must survive the full compile → run → profile flow
/// at O3 and several random settings with identical results.
#[test]
fn whole_suite_differential_o3_and_random() {
    let mut rng = StdRng::seed_from_u64(20091212);
    for p in suite(Workload::default()) {
        let reference = run_module(&p.module, &[]).unwrap();
        let img3 = compile(&p.module, &OptConfig::o3());
        let prof3 = profile(&img3, &p.module, &[], Default::default())
            .unwrap_or_else(|e| panic!("{} failed at O3: {e}", p.name));
        assert_eq!(prof3.ret, reference.ret, "{} O3 result", p.name);
        assert_eq!(prof3.mem_hash, reference.mem_hash, "{} O3 memory", p.name);

        for k in 0..2 {
            let cfg = OptConfig::sample(&mut rng);
            let img = compile(&p.module, &cfg);
            let prof = profile(&img, &p.module, &[], Default::default())
                .unwrap_or_else(|e| panic!("{} cfg#{k} failed: {e} ({cfg:?})", p.name));
            assert_eq!(
                prof.ret, reference.ret,
                "{} cfg#{k} result ({cfg:?})",
                p.name
            );
        }
    }
}

/// The fast timing model must track the detailed cycle-level simulator
/// pointwise (cycles within a factor band, cache miss rates close) across
/// programs and extreme configurations.
#[test]
fn fast_model_tracks_detailed_sim() {
    let mut tiny = MicroArch::xscale();
    tiny.il1_size = 4096;
    tiny.dl1_size = 4096;
    tiny.il1_assoc = 4;
    tiny.dl1_assoc = 4;
    tiny.btb_entries = 128;
    let mut huge = MicroArch::xscale();
    huge.il1_size = 131_072;
    huge.dl1_size = 131_072;
    huge.btb_entries = 2048;
    huge.btb_assoc = 8;
    let cfgs = [tiny, MicroArch::xscale(), huge];

    for name in ["dijkstra", "tiff2bw", "sha"] {
        let p = portopt_mibench::by_name(name, Workload::default()).unwrap();
        let img = compile(&p.module, &OptConfig::o2());
        let prof = profile(&img, &p.module, &[], Default::default()).unwrap();
        for cfg in &cfgs {
            let f = evaluate(&img, &prof, cfg);
            let d = simulate(&img, &p.module, cfg, &[], Default::default()).unwrap();
            let ratio = f.cycles / d.cycles as f64;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{name}: fast {} vs detailed {} (ratio {ratio})",
                f.cycles,
                d.cycles
            );
            let (mf, md) = (f.counters.dcache_miss_rate, d.counters.dcache_miss_rate);
            assert!(
                (mf - md).abs() < 0.06 || (0.5..=2.0).contains(&(mf / md.max(1e-9))),
                "{name}: dcache miss rate fast {mf} vs detailed {md}"
            );
        }
    }
}

/// End-to-end mini-reproduction: train on a handful of programs, evaluate
/// leave-one-out, and require the model to recover a meaningful share of
/// the available improvement.
#[test]
fn mini_reproduction_beats_o3() {
    let names = [
        "search", "crc", "sha", "dijkstra", "tiff2bw", "gs", "madplay", "bf_e",
    ];
    let pairs: Vec<(String, portopt_ir::Module)> = names
        .iter()
        .map(|n| {
            let p = portopt_mibench::by_name(n, Workload::default()).unwrap();
            (p.name.to_string(), p.module)
        })
        .collect();
    let ds = generate(
        &pairs,
        &GenOptions {
            scale: SweepScale {
                n_uarch: 5,
                n_opts: 40,
            },
            seed: 7,
            extended_space: false,
            threads: 0,
        },
    );
    let modules: Vec<portopt_ir::Module> = pairs.iter().map(|(_, m)| m.clone()).collect();
    let loo = portopt_experiments::loo::run_loo(&ds, &modules, 0);

    let best = loo.mean_best();
    let model = loo.mean_model();
    assert!(best > 1.0, "search must find headroom: {best}");
    // The model should capture a solid fraction of the improvement and
    // stay near or above 1.0 on average even at this tiny scale.
    assert!(
        model > 1.0 + (best - 1.0) * 0.2,
        "model mean {model} too far below best {best}"
    );
}

/// The PortableCompiler deployment flow works on an unseen program and an
/// unseen microarchitecture.
#[test]
fn deployment_flow_unseen_program_and_uarch() {
    let names = ["qsort", "fft", "rawcaudio", "ispell", "tiffdither", "lout"];
    let pairs: Vec<(String, portopt_ir::Module)> = names
        .iter()
        .map(|n| {
            let p = portopt_mibench::by_name(n, Workload::default()).unwrap();
            (p.name.to_string(), p.module)
        })
        .collect();
    let ds = generate(
        &pairs,
        &GenOptions {
            scale: SweepScale {
                n_uarch: 4,
                n_opts: 30,
            },
            seed: 13,
            extended_space: false,
            threads: 0,
        },
    );
    let pc = PortableCompiler::train(&ds, None, None, &TrainOptions::default());

    let unseen = portopt_mibench::by_name("say", Workload::default()).unwrap();
    let mut target = MicroArch::xscale();
    target.il1_size = 16384;
    target.btb_entries = 256;
    let (img, _cfg, t3) = pc.optimise(&unseen.module, &target);
    let prof = profile(&img, &unseen.module, &[], Default::default()).unwrap();
    let reference = run_module(&unseen.module, &[]).unwrap();
    assert_eq!(prof.ret, reference.ret, "predicted binary must be correct");
    let t = evaluate(&img, &prof, &target);
    assert!(
        t.cycles < t3.cycles * 1.5,
        "prediction must not be catastrophic: {} vs O3 {}",
        t.cycles,
        t3.cycles
    );
}

/// Determinism across the whole pipeline: dataset, LOO and predictions.
#[test]
fn pipeline_is_deterministic() {
    let pairs: Vec<(String, portopt_ir::Module)> = ["crc", "sha"]
        .iter()
        .map(|n| {
            let p = portopt_mibench::by_name(n, Workload::default()).unwrap();
            (p.name.to_string(), p.module)
        })
        .collect();
    let opts = GenOptions {
        scale: SweepScale {
            n_uarch: 3,
            n_opts: 15,
        },
        seed: 99,
        extended_space: false,
        threads: 0,
    };
    let a = generate(&pairs, &opts);
    let b = generate(&pairs, &opts);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.o3_cycles, b.o3_cycles);
    let fa: Vec<Vec<f64>> = a
        .features
        .iter()
        .flatten()
        .map(|f| f.values.clone())
        .collect();
    let fb: Vec<Vec<f64>> = b
        .features
        .iter()
        .flatten()
        .map(|f| f.values.clone())
        .collect();
    assert_eq!(fa, fb);
}
