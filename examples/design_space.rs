//! Compiler-in-the-loop design-space exploration — the use case the paper's
//! introduction motivates: evaluate candidate microarchitectures *with the
//! compiler adapted to each*, not locked to one baseline's flags.
//!
//! Sweeps instruction-cache sizes for `rijndael_e` and shows how the best
//! optimisation setting (and the achievable performance) shifts with the
//! cache — the icache/code-size trade-off of §5.4.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use portopt::prelude::*;
use portopt_mibench::{by_name, Workload};
use portopt_search::random_search;

fn main() {
    let prog = by_name("rijndael_e", Workload::default()).unwrap();
    println!(
        "design-space sweep: {} across instruction-cache sizes\n",
        prog.name
    );
    println!(
        "{:>9} {:>12} {:>12} {:>8}  {}",
        "IL1", "O3 cycles", "best cycles", "speedup", "best setting differs in"
    );

    for il1 in [4096u32, 8192, 16384, 32768, 65536, 131072] {
        let mut target = MicroArch::xscale();
        target.il1_size = il1;

        // O3 baseline.
        let img3 = compile(&prog.module, &OptConfig::o3());
        let prof3 = profile(&img3, &prog.module, &[], Default::default()).unwrap();
        let t3 = evaluate(&img3, &prof3, &target);

        // Iterative search (the paper's "Best") with a small budget.
        let trace = random_search(60, 9, |cfg| {
            let img = compile(&prog.module, cfg);
            match profile(&img, &prog.module, &[], Default::default()) {
                Ok(p) => evaluate(&img, &p, &target).cycles,
                Err(_) => f64::INFINITY,
            }
        });
        let best = trace.best();

        // Which headline flags differ from O3?
        let dims = OptSpace::dims();
        let (o3c, bc) = (OptConfig::o3().to_choices(), best.config.to_choices());
        let diffs: Vec<&str> = dims
            .iter()
            .zip(o3c.iter().zip(&bc))
            .filter(|(d, (a, b))| a != b && d.cardinality == 2)
            .map(|(d, _)| d.name)
            .take(3)
            .collect();

        println!(
            "{:>8}K {:>12.0} {:>12.0} {:>7.2}x  {}",
            il1 / 1024,
            t3.cycles,
            best.cost,
            t3.cycles / best.cost,
            diffs.join(", ")
        );
    }
    println!("\nsmaller icaches leave more on the table for flag selection —");
    println!("exactly the third region of the paper's Figure 7.");
}
