//! Quickstart: compile a program, run it on the XScale, read the counters.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use portopt::prelude::*;

fn main() {
    // 1. Write a program in the IR builder DSL: sum of squares over an array.
    let mut mb = ModuleBuilder::new("quickstart");
    let (_, data) = mb.global_init("data", 256, (0..256).map(|i| i * 3 % 17).collect());
    let mut b = FuncBuilder::new("main", 0);
    let p = b.iconst(data as i64);
    let acc = b.iconst(0);
    b.counted_loop(0, 256, 1, |b, i| {
        let off = b.shl(i, 2);
        let addr = b.add(p, off);
        let v = b.load(addr, 0);
        let sq = b.mul(v, v);
        let t = b.add(acc, sq);
        b.assign(acc, t);
    });
    b.ret(acc);
    let id = mb.add(b.finish());
    mb.entry(id);
    let module = mb.finish();

    // 2. Compile at two optimisation levels.
    let img_o0 = compile(&module, &OptConfig::o0());
    let img_o3 = compile(&module, &OptConfig::o3());
    println!(
        "code size: O0 = {} bytes, O3 = {} bytes",
        img_o0.code_bytes, img_o3.code_bytes
    );

    // 3. Profile one run each (microarchitecture-independent)…
    let prof_o0 = profile(&img_o0, &module, &[], Default::default()).unwrap();
    let prof_o3 = profile(&img_o3, &module, &[], Default::default()).unwrap();
    assert_eq!(
        prof_o0.ret, prof_o3.ret,
        "optimisation must not change results"
    );
    println!(
        "dynamic instructions: O0 = {}, O3 = {}",
        prof_o0.dyn_insts, prof_o3.dyn_insts
    );

    // 4. …and price them on the XScale.
    let x = MicroArch::xscale();
    let t0 = evaluate(&img_o0, &prof_o0, &x);
    let t3 = evaluate(&img_o3, &prof_o3, &x);
    println!(
        "cycles on XScale: O0 = {:.0}, O3 = {:.0}  (O3 speedup {:.2}x)",
        t0.cycles,
        t3.cycles,
        t0.cycles / t3.cycles
    );
    println!(
        "O3 counters: IPC {:.2}, dcache miss rate {:.4}, icache miss rate {:.4}",
        t3.counters.ipc, t3.counters.dcache_miss_rate, t3.counters.icache_miss_rate
    );
}
