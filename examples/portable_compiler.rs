//! The paper's headline flow (Figure 2): train the portable optimising
//! compiler on a few programs and microarchitectures, then deploy it on a
//! program and a microarchitecture it has never seen.
//!
//! ```sh
//! cargo run --release --example portable_compiler
//! ```

use portopt::prelude::*;
use portopt_core::{generate, GenOptions, PortableCompiler, SweepScale, TrainOptions};
use portopt_mibench::{suite, Workload};

fn main() {
    // Training population: 8 programs (the unseen test program is held out).
    let all = suite(Workload::default());
    let test_name = "sha";
    let training: Vec<(String, portopt_ir::Module)> = all
        .iter()
        .filter(|p| p.name != test_name)
        .take(8)
        .map(|p| (p.name.to_string(), p.module.clone()))
        .collect();
    let test = all.iter().find(|p| p.name == test_name).unwrap();

    // One-off training sweep (small scale so the example runs in ~a minute).
    println!("generating training data ({} programs)…", training.len());
    let ds = generate(
        &training,
        &GenOptions {
            scale: SweepScale {
                n_uarch: 8,
                n_opts: 60,
            },
            seed: 42,
            extended_space: false,
            threads: 0, // auto: all available cores
        },
    );
    let pc = PortableCompiler::train(&ds, None, None, &TrainOptions::default());
    println!("trained on {} program/uarch pairs", pc.model().len());

    // A brand-new microarchitecture, never sampled during training: a
    // small-cache variant of the XScale.
    let mut target = MicroArch::xscale();
    target.il1_size = 8192;
    target.dl1_size = 8192;
    assert!(!ds.uarchs.contains(&target), "target must be unseen");

    // Deploy: one O3 profiling run -> counters -> predicted passes.
    let (img, cfg, t_o3) = pc.optimise(&test.module, &target);
    let prof = profile(&img, &test.module, &[], Default::default()).unwrap();
    let t_pred = evaluate(&img, &prof, &target);

    println!(
        "\ndeploying on unseen program `{}` / unseen uarch (8K caches):",
        test.name
    );
    println!("  O3 cycles:        {:.0}", t_o3.cycles);
    println!("  predicted cycles: {:.0}", t_pred.cycles);
    println!("  speedup over O3:  {:.3}x", t_o3.cycles / t_pred.cycles);
    println!("\npredicted setting (differences from O3):");
    let (o3c, pc_choices) = (OptConfig::o3().to_choices(), cfg.to_choices());
    for (dim, (a, b)) in OptSpace::dims().iter().zip(o3c.iter().zip(&pc_choices)) {
        if a != b {
            println!("  {:<30} {} -> {}", dim.name, a, b);
        }
    }
}
