//! Offline, API-compatible subset of [`proptest`](https://proptest-rs.github.io),
//! vendored so the workspace tests run with no network access.
//!
//! Supported surface — exactly what this workspace's property tests use:
//!
//! * the [`proptest!`] macro with `fn name(arg in strategy, ...) { .. }`
//!   items and an optional `#![proptest_config(..)]` inner attribute;
//! * range strategies (`0u64..100_000`, `0.01f64..10.0`, `0..=n`) and
//!   [`any`]`::<T>()`;
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! No shrinking is performed on failure; the failing case's seed index is
//! reported instead. Case count defaults to 64 (upstream: 256) and honours
//! the `PROPTEST_CASES` environment variable, so CI can dial coverage up.

#![warn(missing_docs)]

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng, Standard};

/// Everything a `proptest!` test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Harness configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried, not failed.
    Reject(String),
    /// A `prop_assert*!` failed: the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds the rejection variant.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A source of generated values for one strategy binding.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut dyn RngCore) -> Self::Value;
}

impl<T> Strategy for std::ops::Range<T>
where
    T: SampleUniform + PartialOrd + Copy,
    std::ops::Range<T>: SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut dyn RngCore) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: SampleUniform + PartialOrd + Copy,
    std::ops::RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut dyn RngCore) -> T {
        rng.gen_range(self.clone())
    }
}

/// Strategy for "any value of `T`", mirroring `proptest::arbitrary::any`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the [`Any`] strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut dyn RngCore) -> T {
        T::sample(rng)
    }
}

/// Runs one test's cases. Used by the [`proptest!`] expansion; not public API.
#[doc(hidden)]
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
) {
    // Deterministic per-test seed so failures are reproducible by name.
    let mut seed = 0xBAD5_EEDu64;
    for b in test_name.bytes() {
        seed = seed.wrapping_mul(0x100000001B3).wrapping_add(b as u64);
    }
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(16).max(1024);
    let mut case_index = 0u64;
    while passed < config.cases {
        let mut rng = StdRng::seed_from_u64(seed ^ case_index);
        case_index += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest {test_name}: too many prop_assume! rejections \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {test_name}: case #{case} (seed {seed:#x} ^ {idx}) failed:\n{msg}",
                    case = passed + 1,
                    idx = case_index - 1,
                );
            }
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(
                stringify!($name),
                &config,
                |__proptest_rng| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)*
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs (::core::default::Default::default()) $($rest)*);
    };
}

/// Asserts inside a `proptest!` body, failing the case (not panicking
/// directly) so the harness can report the generating seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} ({})",
                    stringify!($cond),
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right),
                    ::std::format!($($fmt)+), l, r,
                ),
            ));
        }
    }};
}

/// Discards the current case (retried with fresh inputs) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(::std::format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(a in 3u64..10, b in -2i64..=2, f in 0.5f64..1.5) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-2..=2).contains(&b));
            prop_assert!((0.5..1.5).contains(&f), "f = {}", f);
        }

        #[test]
        fn any_bool_generates_both(_dummy in 0u32..1) {
            // Statistical smoke: over 64 draws both values appear.
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            let draws: Vec<bool> = (0..64).map(|_| {
                crate::Strategy::generate(&crate::any::<bool>(), &mut rng)
            }).collect();
            prop_assert!(draws.iter().any(|&x| x));
            prop_assert!(draws.iter().any(|&x| !x));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failing_property_panics_with_seed() {
        crate::run_cases("failing_property", &ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
