//! Offline, API-compatible subset of [`criterion`](https://bheisler.github.io/criterion.rs),
//! vendored so `cargo bench` works with no network access. Benchmarks are
//! timed with `std::time::Instant` and report mean/min per iteration to
//! stdout; there is no statistical analysis, plotting or baseline storage.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
        g.finish();
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let label = if self.name.is_empty() {
            name.to_string()
        } else {
            format!("{}/{name}", self.name)
        };
        b.report(&label);
    }

    /// Ends the group (upstream emits summaries here; the shim does not).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one duration per sample batch. Batch
    /// sizes auto-scale so each sample takes ≥ ~1ms, and total measurement
    /// is capped at a few seconds.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up + batch calibration.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let budget = Duration::from_secs(3);
        let start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t.elapsed() / batch as u32);
            if start.elapsed() > budget {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        println!(
            "{label:<40} mean {:>12?}  min {:>12?}  ({} samples)",
            mean,
            min,
            self.samples.len()
        );
    }
}

/// Defines a function running each listed benchmark with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut calls = 0u64;
        g.bench_function("add", |b| {
            b.iter(|| {
                calls += 1;
                black_box(1u64 + 2)
            })
        });
        g.finish();
        assert!(calls > 0);
    }
}
