//! Offline shim of `serde_derive`: implements `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` against the `serde` shim's `to_value`/`from_value`
//! traits, using only the compiler-provided `proc_macro` API (the real
//! `syn`/`quote` stack is unavailable without network access).
//!
//! Supported input shapes — exactly what this workspace uses:
//! unit/tuple/named structs and enums with unit, tuple and struct variants,
//! all without generic parameters and without `#[serde(...)]` attributes.
//! Anything else panics at expansion time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (shim version: `fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (shim version: `fn from_value(&Value) -> Result<Self, Error>`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// A tiny shape model of the input item
// ---------------------------------------------------------------------------

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing (token-tree walk; types are never interpreted, only skipped)
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);

    let kw = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }

    match kw.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_struct_fields(&toks, &mut i),
        },
        "enum" => {
            let body = expect_group(&toks, &mut i, Delimiter::Brace);
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

fn parse_struct_fields(toks: &[TokenTree], i: &mut usize) -> Fields {
    match toks.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Fields::Named(parse_named_field_names(&inner))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Fields::Tuple(count_top_level_items(&inner))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        other => panic!("serde_derive shim: unexpected struct body {other:?}"),
    }
}

/// Extracts field names from the inside of a named-field brace group.
/// Commas inside generic argument lists (`Vec<f64>`, `HashMap<K, V>`) are
/// skipped by tracking angle-bracket depth; grouped tokens are atomic.
fn parse_named_field_names(toks: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(toks, &mut i);
        if i >= toks.len() {
            break;
        }
        names.push(expect_ident(toks, &mut i));
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after field name, got {other:?}"),
        }
        skip_type_until_comma(toks, &mut i);
    }
    names
}

fn parse_variants(body: proc_macro::Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Tuple(count_top_level_items(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Named(parse_named_field_names(&inner))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        skip_type_until_comma(&toks, &mut i);
        variants.push(Variant { name, fields });
    }
    variants
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // `#`
                *i += 1; // `[...]`
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Advances past tokens until (and including) a comma at angle-bracket depth
/// zero, so commas inside `HashMap<K, V>`-style generic arguments don't split
/// a field. `->`, `<<` and `>>` never appear in the types this repo derives.
fn skip_type_until_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = toks.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn count_top_level_items(toks: &[TokenTree]) -> usize {
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for tok in toks {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // A trailing comma would overcount by one; detect it.
    if matches!(toks.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive shim: expected identifier, got {other:?}"),
    }
}

fn expect_group(toks: &[TokenTree], i: &mut usize, delim: Delimiter) -> proc_macro::Group {
    match toks.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == delim => {
            *i += 1;
            g.clone()
        }
        other => panic!("serde_derive shim: expected {delim:?} group, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Code generation (source strings, then `.parse()`)
// ---------------------------------------------------------------------------

fn emit_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
                Fields::Named(names) => object_expr(
                    names
                        .iter()
                        .map(|f| (f.clone(), format!("&self.{f}")))
                        .collect(),
                ),
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),")
                        }
                        Fields::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![\
                                 (\"{vn}\".to_string(), {payload})]),",
                                binds = binders.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let payload = object_expr(
                                fields.iter().map(|f| (f.clone(), f.clone())).collect(),
                            );
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                                 (\"{vn}\".to_string(), {payload})]),",
                                binds = fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn object_expr(fields: Vec<(String, String)>) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|(name, expr)| {
            format!("(\"{name}\".to_string(), ::serde::Serialize::to_value({expr}))")
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", items.join(", "))
}

fn emit_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Unit => format!("::core::result::Result::Ok({name})"),
            Fields::Tuple(1) => {
                format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            }
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                    .collect();
                format!(
                    "let items = v.as_array().ok_or_else(|| ::serde::Error::new(\"expected array for {name}\"))?;\n\
                     if items.len() != {n} {{ return ::core::result::Result::Err(::serde::Error::new(\"wrong tuple arity for {name}\")); }}\n\
                     ::core::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            }
            Fields::Named(names) => {
                format!(
                    "::core::result::Result::Ok({name} {{ {} }})",
                    named_field_inits(names, "v")
                )
            }
        },
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => unreachable!(),
                        Fields::Tuple(1) => format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(payload)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{\n\
                                     let items = payload.as_array().ok_or_else(|| ::serde::Error::new(\"expected array for {name}::{vn}\"))?;\n\
                                     if items.len() != {n} {{ return ::core::result::Result::Err(::serde::Error::new(\"wrong arity for {name}::{vn}\")); }}\n\
                                     ::core::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => format!(
                            "\"{vn}\" => ::core::result::Result::Ok({name}::{vn} {{ {} }}),",
                            named_field_inits(fields, "payload")
                        ),
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {units}\n\
                         other => ::core::result::Result::Err(::serde::Error::new(\
                             ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                         let (tag, payload) = &fields[0];\n\
                         match tag.as_str() {{\n\
                             {payloads}\n\
                             other => ::core::result::Result::Err(::serde::Error::new(\
                                 ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::core::result::Result::Err(::serde::Error::new(\"expected enum value for {name}\")),\n\
                 }}",
                units = unit_arms.join("\n"),
                payloads = payload_arms.join("\n"),
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn named_field_inits(names: &[String], source: &str) -> String {
    // `field_at` checks the declaration-order position first (our own
    // serializer emits fields in that order), making the common decode
    // O(fields) instead of a name scan per field.
    names
        .iter()
        .enumerate()
        .map(|(i, f)| {
            format!("{f}: ::serde::Deserialize::from_value(::serde::field_at({source}, {i}, \"{f}\")?)?,")
        })
        .collect::<Vec<_>>()
        .join(" ")
}
