//! Offline, API-compatible subset of [`serde`](https://serde.rs), vendored so
//! the workspace builds with no network access.
//!
//! Unlike upstream serde's zero-copy visitor architecture, this shim routes
//! everything through an owned JSON-like [`Value`] tree: [`Serialize`] renders
//! a value *to* a [`Value`], [`Deserialize`] rebuilds one *from* it. The
//! `serde_json` shim then just prints and parses that tree. The derive macros
//! (`#[derive(Serialize, Deserialize)]`) are re-exported from the
//! `serde_derive` shim and target these traits; the encoding matches serde's
//! conventions (structs as objects, newtypes transparent, externally-tagged
//! enums) so the on-disk JSON looks like what upstream serde would produce.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-like document tree: the interchange format between the
/// [`Serialize`]/[`Deserialize`] traits and the `serde_json` shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// An integer that fits in `i64`.
    I64(i64),
    /// A non-negative integer that does not fit in `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Views this value as an object's field list, if it is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Views this value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of an object by name.
    pub fn field<'v>(&'v self, name: &str) -> Result<&'v Value, Error> {
        let fields = self
            .as_object()
            .ok_or_else(|| Error::new(format!("expected object with field `{name}`")))?;
        fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::new(format!("missing field `{name}`")))
    }
}

/// Positional-first field lookup used by derived `Deserialize` impls.
///
/// Documents produced by this workspace's own serializer keep struct
/// fields in declaration order, so `fields[index]` is almost always the
/// requested field — one comparison instead of a name scan per field,
/// which turns an n-field struct decode from O(n²) into O(n). Reordered
/// or hand-written documents fall back to [`Value::field`]'s scan, so
/// lookup semantics (including error messages) are unchanged.
#[doc(hidden)]
pub fn field_at<'v>(v: &'v Value, index: usize, name: &str) -> Result<&'v Value, Error> {
    if let Value::Object(fields) = v {
        if let Some((k, val)) = fields.get(index) {
            if k == name {
                return Ok(val);
            }
        }
    }
    v.field(name)
}

/// A (de)serialization error: a message, nothing more.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types renderable to a [`Value`].
pub trait Serialize {
    /// Renders `self` as a document tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a document tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| Error::new("integer out of range"))?,
                    // Only accept floats that represent this exact integer
                    // (the saturating `as` cast would otherwise turn 1e300
                    // into i64::MAX silently).
                    Value::F64(f) if f.fract() == 0.0 && (f as i64) as f64 == f => f as i64,
                    _ => return Err(Error::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self as u64) {
                    Ok(n) => Value::I64(n),
                    Err(_) => Value::U64(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match *v {
                    Value::I64(n) => u64::try_from(n)
                        .map_err(|_| Error::new("negative integer for unsigned type"))?,
                    Value::U64(n) => n,
                    Value::F64(f) if f.fract() == 0.0 && f >= 0.0 && (f as u64) as f64 == f => {
                        f as u64
                    }
                    _ => return Err(Error::new(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}
impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::F64(f) => Ok(f as $t),
                    Value::I64(n) => Ok(n as $t),
                    Value::U64(n) => Ok(n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::new("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// A `Value` (de)serializes as itself, so documents can be parsed to a tree
// once, inspected, and only then decoded into a concrete type — mirroring
// upstream `serde_json::Value`.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of length {N}")))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::new("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::new(format!(
                        "expected tuple of length {expected}, got {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}
impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::new("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i64::from_value(&42i64.to_value()).unwrap(), 42);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1.0f64, vec![1u8, 2]), (2.5, vec![3])];
        let got: Vec<(f64, Vec<u8>)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(got, v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn value_roundtrips_as_itself() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::I64(1)),
            ("b".to_string(), Value::Array(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v.to_value(), v);
        assert_eq!(Value::from_value(&v).unwrap(), v);
    }

    #[test]
    fn unsigned_rejects_negative() {
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn integers_reject_out_of_range_floats() {
        assert!(i64::from_value(&Value::F64(1e300)).is_err());
        assert!(u64::from_value(&Value::F64(1e300)).is_err());
        assert!(i64::from_value(&Value::F64(-1e300)).is_err());
        assert_eq!(i64::from_value(&Value::F64(42.0)).unwrap(), 42);
        assert_eq!(
            u64::from_value(&Value::F64(2f64.powi(53))).unwrap(),
            1 << 53
        );
    }
}
