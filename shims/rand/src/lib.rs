//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8-era surface), vendored so the workspace builds with no network
//! access. Only the pieces `portopt` uses are provided: [`RngCore`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] (xoshiro256** seeded via
//! SplitMix64), and the [`Rng`] extension methods `gen_range`, `gen_bool` and
//! `gen`.
//!
//! Determinism is part of the contract: the same seed always yields the same
//! stream, on every platform, forever — dataset generation and the proptest
//! harness both rely on it.

#![warn(missing_docs)]

/// A low-level source of random 32/64-bit words. Object-safe.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (including unsized `dyn RngCore`).
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of type `T` from its standard distribution
    /// (`[0,1)` for floats, full range for integers, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts a random word to a uniform `f64` in `[0, 1)` with 53 bits.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for `Self`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform-range sampling machinery (mirrors `rand::distributions::uniform`).
pub mod distributions {
    /// Range-to-sample adapters used by [`Rng::gen_range`](crate::Rng::gen_range).
    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that can produce uniform samples of `T`.
        pub trait SampleRange<T> {
            /// Draws one uniform sample from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Scalars with a uniform sampler over half-open/closed bounds.
        pub trait SampleUniform: Sized {
            /// Uniform sample from `[lo, hi)`.
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
            /// Uniform sample from `[lo, hi]`.
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
        }

        impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "gen_range: empty range");
                T::sample_half_open(self.start, self.end, rng)
            }
        }

        impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                T::sample_inclusive(lo, hi, rng)
            }
        }

        /// Multiplies a random word into `[0, span)` without modulo bias
        /// (Lemire's multiply-shift; the tiny residual bias is < 2^-64).
        #[inline]
        fn mul_shift(word: u64, span: u64) -> u64 {
            ((word as u128 * span as u128) >> 64) as u64
        }

        macro_rules! impl_sample_uniform_int {
            ($($t:ty => $u:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                        lo.wrapping_add(mul_shift(rng.next_u64(), span) as $t)
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        lo.wrapping_add(mul_shift(rng.next_u64(), span + 1) as $t)
                    }
                }
            )*};
        }
        impl_sample_uniform_int!(
            u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
            i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
        );

        macro_rules! impl_sample_uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        let u = crate::unit_f64(rng.next_u64()) as $t;
                        let v = lo + u * (hi - lo);
                        // Rounding can push v up to exactly hi (probability
                        // ~2^-53); fall back to lo rather than bit-tricks,
                        // which misbehave around hi <= 0.
                        if v < hi { v } else { lo }
                    }
                    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                        let u = crate::unit_f64(rng.next_u64()) as $t;
                        lo + u * (hi - lo)
                    }
                }
            )*};
        }
        impl_sample_uniform_float!(f32, f64);
    }
}

/// Concrete generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded by SplitMix64. Not the upstream `StdRng` algorithm, but a
    /// high-quality, stable, dependency-free stand-in.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3i64..20);
            assert!((3..20).contains(&v));
            let u = rng.gen_range(0u64..=5);
            assert!(u <= 5);
            let f = rng.gen_range(-5.0f64..5.0);
            assert!((-5.0..5.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn dyn_rngcore_supports_gen_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let pick = |rng: &mut dyn RngCore, v: &[u32]| v[rng.gen_range(0..v.len())];
        let v = [10, 20, 30];
        assert!(v.contains(&pick(&mut rng, &v)));
    }

    #[test]
    fn float_ranges_with_nonpositive_hi_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0f64..0.0);
            assert!((-1.0..0.0).contains(&v), "v = {v}");
            let w = rng.gen_range(-1e300f64..-1.0);
            assert!((-1e300..-1.0).contains(&w), "w = {w}");
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
