//! Offline, API-compatible subset of `serde_json` (the crates.io crate), vendored so the
//! workspace builds with no network access. Provides [`to_string`],
//! [`to_vec`], [`from_str`] and [`from_slice`] over the `serde` shim's
//! [`Value`] tree, with a by-hand JSON printer and recursive-descent parser.

#![warn(missing_docs)]

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// The usual `serde_json` result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Deserializes a `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' if self.eat_keyword("null") => Ok(Value::Null),
            b't' if self.eat_keyword("true") => Ok(Value::Bool(true)),
            b'f' if self.eat_keyword("false") => Ok(Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our printer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: find the full char from the source.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(from_str::<f64>("-1.5").unwrap(), -1.5);
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
    }

    #[test]
    fn roundtrip_nested() {
        let v: Vec<(String, Vec<f64>)> = vec![
            ("a\"b\\c\n".to_string(), vec![1.0, 2.25]),
            ("x".to_string(), vec![]),
        ];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, Vec<f64>)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_whitespace_and_rejects_trailing() {
        assert_eq!(from_str::<Vec<u8>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
        assert!(from_str::<Vec<u8>>("[1] x").is_err());
    }

    #[test]
    fn float_precision_roundtrips() {
        for f in [1e300f64, 0.1, 1.0 / 3.0, -0.0, 123456789.123456789] {
            let back: f64 = from_str(&to_string(&f).unwrap()).unwrap();
            assert_eq!(back.to_bits(), f.to_bits());
        }
    }
}
