//! Offline, API-compatible subset of `serde_json` (the crates.io crate), vendored so the
//! workspace builds with no network access. Provides [`to_string`],
//! [`to_vec`], [`from_str`] and [`from_slice`] over the `serde` shim's
//! [`Value`] tree, with a by-hand JSON printer and recursive-descent parser.

#![warn(missing_docs)]

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// The usual `serde_json` result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Deserializes a `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    use std::fmt::Write as _;
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        // `write!` formats straight into `out`; `to_string`/`format!`
        // here would allocate a scratch String per number, which is the
        // serving hot path's dominant serialization cost.
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that round-trips.
                let _ = write!(out, "{f:?}");
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    // Copy maximal clean runs in one `push_str` each; only the bytes that
    // actually need escaping (all ASCII, so always char boundaries) break
    // the run. Object keys and most payloads are one clean run.
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'"' || b == b'\\' || b < 0x20 {
            out.push_str(&s[start..i]);
            match b {
                b'"' => out.push_str("\\\""),
                b'\\' => out.push_str("\\\\"),
                b'\n' => out.push_str("\\n"),
                b'\r' => out.push_str("\\r"),
                b'\t' => out.push_str("\\t"),
                _ => {
                    let _ = write!(out, "\\u{b:04x}");
                }
            }
            start = i + 1;
        }
    }
    out.push_str(&s[start..]);
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' if self.eat_keyword("null") => Ok(Value::Null),
            b't' if self.eat_keyword("true") => Ok(Value::Bool(true)),
            b'f' if self.eat_keyword("false") => Ok(Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::with_capacity(8);
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::with_capacity(8);
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        // Fast path: scan to the closing quote; a string with no escape
        // sequences (every key, almost every payload) is copied out in
        // one exactly-sized allocation instead of byte-at-a-time pushes.
        // The scan stops at ASCII bytes only, so the slice boundaries are
        // char boundaries of the (already UTF-8-validated) input.
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?;
                    self.pos += 1;
                    return Ok(s.to_string());
                }
                b'\\' => break,
                _ => self.pos += 1,
            }
        }
        // Slow path: an escape (or an unterminated string, which the loop
        // below reports). Seed with the clean prefix already scanned.
        let mut out = String::new();
        out.push_str(
            std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?,
        );
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our printer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: find the full char from the source.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token = &self.bytes[start..self.pos];
        if let Some(v) = fast_number(token) {
            return Ok(v);
        }
        let text = std::str::from_utf8(token).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

/// Incremental token-level access to a JSON document, for callers that
/// decode a known shape without building a [`Value`] tree (the serving hot
/// path's request lines). Whitespace handling, string scanning and number
/// conversion delegate to the same internals [`parse`] uses, so a
/// shape-specialised decoder built on `Scanner` cannot diverge from the
/// tree path on tokens it accepts — it must discard the scanner and
/// re-parse via [`parse`] on any `None`/`false`, which may leave the
/// scanner mid-token.
pub struct Scanner<'a> {
    p: Parser<'a>,
}

impl<'a> Scanner<'a> {
    /// Starts scanning at the beginning of `s`.
    pub fn new(s: &'a str) -> Self {
        Scanner {
            p: Parser {
                bytes: s.as_bytes(),
                pos: 0,
            },
        }
    }

    /// Consumes `b` (after whitespace) if it is the next byte.
    pub fn bump_if(&mut self, b: u8) -> bool {
        if self.p.peek().ok() == Some(b) {
            self.p.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes the literal `kw` (after whitespace) if it is next.
    pub fn keyword(&mut self, kw: &str) -> bool {
        self.p.skip_ws();
        self.p.eat_keyword(kw)
    }

    /// Consumes a string token with no escape sequences and returns it
    /// borrowed from the input; `None` on anything else (including a
    /// string that merely *contains* an escape — fall back to [`parse`]).
    pub fn raw_str(&mut self) -> Option<&'a str> {
        if !self.bump_if(b'"') {
            return None;
        }
        let start = self.p.pos;
        loop {
            match self.p.bytes.get(self.p.pos)? {
                b'"' => {
                    let s = std::str::from_utf8(&self.p.bytes[start..self.p.pos]).ok()?;
                    self.p.pos += 1;
                    return Some(s);
                }
                b'\\' => return None,
                _ => self.p.pos += 1,
            }
        }
    }

    /// Consumes a number token (after whitespace) with exactly the
    /// conversion semantics of [`parse`]: integer tokens through
    /// I64-then-U64, everything else through the guarded fast path or
    /// std's correctly rounded `f64` parse.
    pub fn number(&mut self) -> Option<Value> {
        self.p.skip_ws();
        self.p.number().ok()
    }

    /// True when only whitespace remains.
    pub fn at_end(&mut self) -> bool {
        self.p.skip_ws();
        self.p.pos == self.p.bytes.len()
    }
}

/// Exact fast path for the common number shapes (Clinger 1990): a decimal
/// whose mantissa fits in 53 bits combined with a power of ten that is
/// itself exactly representable yields the correctly rounded `f64` from a
/// single IEEE multiply or divide — bit-identical to `str::parse::<f64>`.
/// Anything outside the guarded shape (huge mantissa, |exponent| > 22,
/// malformed token) returns `None` and takes the std parse path, so error
/// behaviour and extreme-value results are unchanged. This exists because
/// a serve request line is mostly numbers, and per-number `from_str` was
/// the hot path's single largest cost.
fn fast_number(token: &[u8]) -> Option<Value> {
    const POW10: [f64; 23] = [
        1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15, 1e16,
        1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
    ];
    let digit_run = |bytes: &[u8]| bytes.iter().take_while(|b| b.is_ascii_digit()).count();
    let (neg, body) = match token {
        [b'-', rest @ ..] => (true, rest),
        _ => (false, token),
    };
    // Token shape: digits [ '.' digits ] [ (e|E) [+|-] digits ], nothing
    // else. Anything off-shape returns None and takes the std path.
    let int_len = digit_run(body);
    if int_len == 0 {
        return None;
    }
    let int_part = &body[..int_len];
    let mut rest = &body[int_len..];
    let mut frac_part: &[u8] = &[];
    let mut is_float = false;
    if let [b'.', tail @ ..] = rest {
        is_float = true;
        let frac_len = digit_run(tail);
        if frac_len == 0 {
            return None;
        }
        frac_part = &tail[..frac_len];
        rest = &tail[frac_len..];
    }
    let mut exp: i32 = 0;
    if let [b'e' | b'E', tail @ ..] = rest {
        is_float = true;
        let (exp_neg, digits) = match tail {
            [b'-', d @ ..] => (true, d),
            [b'+', d @ ..] => (false, d),
            d => (false, d),
        };
        let exp_len = digit_run(digits);
        if exp_len == 0 || exp_len > 4 {
            return None;
        }
        for &b in &digits[..exp_len] {
            exp = exp * 10 + (b - b'0') as i32;
        }
        rest = &digits[exp_len..];
        if exp_neg {
            exp = -exp;
        }
    }
    if !rest.is_empty() {
        return None;
    }
    // Leading zeros carry no mantissa value; skipping them from the digit
    // count admits shapes like `0.000...123` whose significant digits fit
    // even though the literal is long.
    let mut lead = int_part.iter().take_while(|&&b| b == b'0').count();
    if lead == int_part.len() {
        lead += frac_part.iter().take_while(|&&b| b == b'0').count();
    }
    if int_part.len() + frac_part.len() - lead > 19 {
        // More than 19 significant digits cannot be accumulated in a u64.
        return None;
    }
    // ≤ 19 significant digits bound the result below 10^19 < u64::MAX, so
    // the accumulation cannot overflow (leading zeros add nothing).
    let mut mant: u64 = 0;
    for &b in int_part.iter().chain(frac_part) {
        mant = mant * 10 + (b - b'0') as u64;
    }
    let frac = frac_part.len() as i32;
    if !is_float {
        // Integer: mirror the std path's I64-then-U64 preference.
        if mant <= i64::MAX as u64 {
            let n = mant as i64;
            return Some(Value::I64(if neg { -n } else { n }));
        }
        return if neg { None } else { Some(Value::U64(mant)) };
    }
    if mant >= (1u64 << 53) {
        return None;
    }
    let e = exp - frac;
    let magnitude = if e >= 0 {
        if e > 22 {
            return None;
        }
        (mant as f64) * POW10[e as usize]
    } else {
        if e < -22 {
            return None;
        }
        (mant as f64) / POW10[(-e) as usize]
    };
    Some(Value::F64(if neg { -magnitude } else { magnitude }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(from_str::<f64>("-1.5").unwrap(), -1.5);
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
    }

    #[test]
    fn roundtrip_nested() {
        let v: Vec<(String, Vec<f64>)> = vec![
            ("a\"b\\c\n".to_string(), vec![1.0, 2.25]),
            ("x".to_string(), vec![]),
        ];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, Vec<f64>)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_whitespace_and_rejects_trailing() {
        assert_eq!(from_str::<Vec<u8>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
        assert!(from_str::<Vec<u8>>("[1] x").is_err());
    }

    #[test]
    fn number_fast_path_is_bit_identical_to_std_parse() {
        // Hand-picked boundary shapes: fast-path hits, guard misses, and
        // the int/float promotion edges.
        let mut probes: Vec<String> = [
            "0",
            "-0",
            "0.0",
            "-0.0",
            "1",
            "-1",
            "00",
            "01.5",
            "9007199254740991",
            "9007199254740993",
            "9223372036854775807",
            "-9223372036854775808",
            "18446744073709551615",
            "0.1",
            "-0.1",
            "1e22",
            "1e23",
            "1e-22",
            "1e-23",
            "1e300",
            "1e999",
            "-1e999",
            "2.2250738585072014e-308",
            "5e-324",
            "123456789.123456789",
            "0.000001234",
            "3.141592653589793",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        // Pseudo-random doubles through their shortest round-trip print —
        // what our own printer emits and what the serving path re-parses.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let f = f64::from_bits(x);
            if f.is_finite() {
                probes.push(format!("{f:?}"));
            }
            probes.push(format!("{}", x >> 12));
            probes.push(format!("{:?}", (x >> 40) as f64 / 1000.0));
        }
        for p in &probes {
            // The shim's documented semantics: integer tokens decode
            // through I64/U64 first (so `-0` is integer zero), everything
            // else through std's correctly rounded f64 parse.
            let expected = if let Ok(n) = p.parse::<i64>() {
                n as f64
            } else if let Ok(n) = p.parse::<u64>() {
                n as f64
            } else {
                p.parse::<f64>().unwrap()
            };
            let got: f64 = from_str(p).unwrap();
            assert_eq!(
                got.to_bits(),
                expected.to_bits(),
                "`{p}` parsed to {got:?}, std says {expected:?}"
            );
        }
    }

    #[test]
    fn float_precision_roundtrips() {
        for f in [1e300f64, 0.1, 1.0 / 3.0, -0.0, 123456789.123456789] {
            let back: f64 = from_str(&to_string(&f).unwrap()).unwrap();
            assert_eq!(back.to_bits(), f.to_bits());
        }
    }
}
